// Package serve exercises the lockorder analyzer: locks nest only inward
// along the recorded tier order, and no slow work runs under a lock.
package serve

import (
	"sync"
	"time"

	"compile"
)

// lru matches the real tier-70 cache class (generic instances collapse to
// the origin name).
type lru[V any] struct {
	mu sync.Mutex
	m  map[string]V
}

// registry matches the real tier-60 class.
type registry struct {
	mu   sync.RWMutex
	snap int
}

// flightGroup matches the real tier-50 class.
type flightGroup struct {
	mu sync.Mutex
	n  int
}

// rogue is deliberately absent from lockorder.Tiers.
type rogue struct{ mu sync.Mutex }

func okInward(r *registry, c *lru[int]) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.mu.Lock() // registry (60) -> lru (70): inward, fine
	c.m["k"] = 1
	c.mu.Unlock()
}

func okSequential(c *lru[int], r *registry) {
	c.mu.Lock()
	c.m["k"] = 1
	c.mu.Unlock()
	r.mu.Lock() // the lru lock was released: no nesting
	r.snap++
	r.mu.Unlock()
}

func badOutward(c *lru[int], r *registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.mu.Lock() // want `acquiring registry\.mu \(tier 60\) while holding lru\.mu \(tier 70\) violates the serve lock order`
	r.mu.Unlock()
}

func badSameTier(a *lru[int], b *lru[string]) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring lru\.mu \(tier 70\) while holding lru\.mu \(tier 70\) violates the serve lock order`
	b.mu.Unlock()
}

func badDeferHeld(f *flightGroup, c *lru[int]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The deferred unlock has not run yet: the lock is held here.
	f.mu.Lock() // want `acquiring flightGroup\.mu \(tier 50\) while holding lru\.mu \(tier 70\) violates the serve lock order`
	f.mu.Unlock()
}

func badSlowUnderLock(c *lru[int]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m["k"] = compile.Route() // want `call into compile while holding lru\.mu: no compile/simulate/network work under a serve lock`
}

func badSleepUnderLock(r *registry) {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding registry\.mu: serve locks guard map surgery only`
	r.mu.Unlock()
}

func badUnknownClass(x *rogue) {
	x.mu.Lock() // want `lock class "rogue\.mu" has no recorded tier: add it to lockorder\.Tiers before using it in serve`
	x.mu.Unlock()
}

func okSlowOutsideLock(c *lru[int]) {
	v := compile.Route()
	c.mu.Lock()
	c.m["k"] = v
	c.mu.Unlock()
}

func allowedEscape(c *lru[int], r *registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow lockorder: fixture-sanctioned — startup-only path, no concurrent lockers yet
	r.mu.Lock()
	r.mu.Unlock()
}
