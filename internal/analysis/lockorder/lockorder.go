// Package lockorder enforces the serve package's mutex discipline. Serve
// holds locks only for map/list surgery: while any serve mutex is held,
// no compilation, simulation, network call, or time.Sleep may run, and a
// second lock may only be acquired strictly inward along the recorded
// tier order. Both cache tiers (the full-key outcome LRU and the
// angle-free skeleton LRU) share the lru.mu class at the innermost tier,
// so holding either forbids acquiring anything — including the other
// tier, which is what makes "no second-tier lock acquisition while
// holding a cache mutex" a structural rule rather than a review note.
//
// Lock classes are named after the owning type ("lru.mu", "breaker.mu"):
// every sync.Mutex/RWMutex acquired inside serve must belong to a class
// in Tiers, so a new lock cannot be added without recording its place in
// the order. The analysis is intraprocedural over the dataflow CFG —
// the held set flows through branches, and defer Unlock is the repo
// idiom, so a lock held at a call site is genuinely held there.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Tiers is the recorded lock order for internal/serve: a lock may be
// acquired while holding another only if its tier is strictly greater
// (further inward). lru.mu — the class of both the compiled-outcome LRU
// and the skeleton LRU — is innermost: holding a cache mutex forbids
// acquiring any serve lock, including the other cache tier.
var Tiers = map[string]int{
	"ObsServer.mu": 10, // readiness flips around the observability endpoint
	"inspector.mu": 20, // request-record ring
	"admission.mu": 30, // queue-depth accounting
	"breaker.mu":   40, // per-preset breaker state
	"flightGroup.mu": 50, // singleflight join/finish surgery
	"registry.mu":  60, // device snapshot swap
	"lru.mu":       70, // both cache tiers; innermost, nothing nests inside
}

// bannedPackages may not be called while holding any serve lock: compile
// and routing work takes milliseconds, simulation seconds, and network
// writes block arbitrarily — all of them would serialize every cache hit
// behind one slow request.
var bannedPackages = []string{"compile", "router", "sim", "net", "net/http"}

// Analyzer enforces the serve lock-tier order and the no-slow-work-under-
// lock rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "serve locks nest only inward along the recorded tier order, and no compile/simulate/network/sleep runs under a serve lock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgNamed(pass.Pkg.Path(), "serve") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := dataflow.New(body)
	// Held-set dataflow: which lock classes may be held entering a block.
	// defer Unlock is ignored deliberately — the lock stays held until the
	// function returns, which is exactly what the call-site checks need.
	transfer := func(bl *dataflow.Block, in dataflow.Set[string], report bool) dataflow.Set[string] {
		for _, n := range bl.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				// defer Unlock runs at return, not here: the lock stays
				// held for the rest of the function.
				continue
			}
			dataflow.Inspect(n, func(sub ast.Node) bool {
				call, ok := sub.(*ast.CallExpr)
				if !ok {
					return true
				}
				if class, op := lockOp(pass.TypesInfo, call); class != "" {
					switch op {
					case opLock:
						if report {
							checkAcquire(pass, call, class, in)
						}
						in[class] = true
					case opUnlock:
						delete(in, class)
					}
					return true
				}
				if report && len(in) > 0 {
					checkCallUnderLock(pass, call, in)
				}
				return true
			})
		}
		return in
	}
	ins := dataflow.ForwardUnion(g, func(bl *dataflow.Block, in dataflow.Set[string]) dataflow.Set[string] {
		return transfer(bl, in, false)
	})
	for _, bl := range g.Blocks {
		transfer(bl, ins[bl].Clone(), true)
	}
}

// checkAcquire enforces the tier order at a Lock/RLock site.
func checkAcquire(pass *analysis.Pass, call *ast.CallExpr, class string, held dataflow.Set[string]) {
	tier, known := Tiers[class]
	if !known {
		pass.Reportf(call.Pos(), "lock class %q has no recorded tier: add it to lockorder.Tiers before using it in serve", class)
		return
	}
	for h := range held {
		if ht, ok := Tiers[h]; ok && tier <= ht {
			pass.Reportf(call.Pos(), "acquiring %s (tier %d) while holding %s (tier %d) violates the serve lock order", class, tier, h, ht)
		}
	}
}

// checkCallUnderLock flags slow or reentrant work under a serve lock.
func checkCallUnderLock(pass *analysis.Pass, call *ast.CallExpr, held dataflow.Set[string]) {
	fn, _ := analysis.StaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path == "time" && fn.Name() == "Sleep" {
		pass.Reportf(call.Pos(), "time.Sleep while holding %s: serve locks guard map surgery only", anyHeld(held))
		return
	}
	if analysis.PkgNamed(path, bannedPackages...) {
		pass.Reportf(call.Pos(), "call into %s while holding %s: no compile/simulate/network work under a serve lock", path, anyHeld(held))
	}
}

func anyHeld(held dataflow.Set[string]) string {
	best := ""
	for h := range held {
		if best == "" || h < best {
			best = h
		}
	}
	return best
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as acquiring or releasing a mutex, returning
// the lock class name ("lru.mu" for c.mu where c is an *lru[V], or the
// variable name for a package-level mutex).
func lockOp(info *types.Info, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	recv := sel.X
	if !isMutex(info.TypeOf(recv)) {
		return "", opNone
	}
	return lockClass(info, recv), op
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockClass names the lock: "Owner.field" for a field of a named type
// (generic instances collapse to their origin: lru[*outcome] and
// lru[*skelEntry] are one class), the plain identifier otherwise.
func lockClass(info *types.Info, recv ast.Expr) string {
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		t := info.TypeOf(r.X)
		if t == nil {
			return r.Sel.Name
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name := named.Origin().Obj().Name()
			return name + "." + r.Sel.Name
		}
		return exprString(r.X) + "." + r.Sel.Name
	case *ast.Ident:
		return r.Name
	}
	return exprString(recv)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	}
	return "?"
}

// ClassesIn lists every serve lock class the analyzer would assign in the
// given package — exported so a regression test can assert Tiers covers
// the real serve tree exactly.
func ClassesIn(pass *analysis.Pass) []string {
	seen := map[string]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // the analyzer exempts test files; mirror that here
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if class, op := lockOp(pass.TypesInfo, call); op != opNone && class != "" {
				seen[class] = true
			}
			return true
		})
	}
	var out []string
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
