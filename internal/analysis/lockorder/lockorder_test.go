package lockorder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "serve")
}

// TestTiersCoverRealServe pins the recorded tier table to the real
// internal/serve tree: every lock class the package actually acquires has
// a tier, and no stale class lingers in the table. A new mutex in serve
// fails this test until its place in the order is recorded.
func TestTiersCoverRealServe(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/serve")
	if err != nil {
		t.Fatalf("loading internal/serve: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("internal/serve did not load")
	}
	found := map[string]bool{}
	for _, pkg := range pkgs {
		// Load pulls in module dependencies; only serve's own locks are
		// governed by the tier table.
		if pkg.Types.Path() != "repro/internal/serve" {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  lockorder.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		for _, class := range lockorder.ClassesIn(pass) {
			found[class] = true
		}
	}
	if len(found) == 0 {
		t.Fatal("no lock classes found in internal/serve; ClassesIn is broken")
	}
	for class := range found {
		if _, ok := lockorder.Tiers[class]; !ok {
			t.Errorf("serve acquires lock class %q but lockorder.Tiers has no entry for it", class)
		}
	}
	for class := range lockorder.Tiers {
		if !found[class] {
			t.Errorf("lockorder.Tiers records %q but internal/serve never acquires it; drop the stale entry", class)
		}
	}
}
