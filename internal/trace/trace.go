// Package trace is the compiler's decision-level introspection layer: a
// nil-safe, schema-versioned structured event stream that the mapping,
// ordering, routing, stitching and fallback passes emit their individual
// decisions into — which logical qubit was placed where and why, which
// CPhase terms formed a layer at what live distance, every SWAP with the
// layout it transformed and the distance it paid, and every step of the
// graceful-degradation ladder.
//
// It mirrors the obsv.Collector idiom: every method on a nil *Tracer is a
// no-op that performs no allocation and reads no clock, so instrumented
// code costs nothing when tracing is disabled. Unlike the collector's
// aggregate counters, the tracer keeps the full ordered event sequence, so
// a bad layout or a surprising fallback can be explained after the fact
// (the paper's Fig. 5/6 reasoning) instead of only counted.
//
// Three exporters consume the stream: WriteJSONL (one event per line,
// byte-deterministic under fixed seeds once timestamps are stripped, so it
// golden-tests), WriteChromeTrace (Chrome trace-event JSON openable in
// Perfetto or chrome://tracing, with one track per pass and SWAP instants)
// and WriteExplain/WriteDOT (terminal heatmap + layer timeline, Graphviz).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SchemaVersion identifies the event layout. Bump on any
// backwards-incompatible change to Event or its payload types.
const SchemaVersion = 1

// Kind discriminates the event payloads.
type Kind string

// Event kinds, in the order a typical compilation emits them.
const (
	// KindMeta opens a compilation: device shape, problem size, strategy.
	KindMeta Kind = "meta"
	// KindPassBegin / KindPassEnd bracket a named pass (map, order, route).
	KindPassBegin Kind = "pass_begin"
	KindPassEnd   Kind = "pass_end"
	// KindPlacement is one initial-mapping decision.
	KindPlacement Kind = "placement"
	// KindLayer is one incremental layer-formation decision.
	KindLayer Kind = "layer"
	// KindSwap is one inserted SWAP.
	KindSwap Kind = "swap"
	// KindStitch is one partial-circuit stitch boundary.
	KindStitch Kind = "stitch"
	// KindFallback is one step of the degradation ladder.
	KindFallback Kind = "fallback"
)

// MetaInfo describes the compilation a trace belongs to, making the stream
// self-contained: the DOT and heatmap renderers read the coupling graph
// from here rather than needing the device object.
type MetaInfo struct {
	Device   string   `json:"device"`
	NQubits  int      `json:"n_qubits"`
	Coupling [][2]int `json:"coupling"`
	NLogical int      `json:"n_logical"`
	Mapper   string   `json:"mapper"`
	Strategy string   `json:"strategy"`
	// RequestID joins a service-originated trace to the request's other
	// observability surfaces (X-Request-ID header, wide-event log line,
	// /debug/requests inspector record). Empty for CLI compilations.
	RequestID string `json:"request_id,omitempty"`
}

// PlacementInfo records one initial-mapping choice: logical qubit Logical
// was placed on physical qubit Phys, which had connectivity strength
// Strength among Candidates scored alternatives. For neighbour-guided QAIM
// placements Score is the winning strength/cumulative-distance metric and
// PlacedNeighbors lists the physical positions of the already-placed
// logical neighbours that anchored the decision.
type PlacementInfo struct {
	Logical         int     `json:"logical"`
	Phys            int     `json:"phys"`
	Strength        int     `json:"strength"`
	Score           float64 `json:"score,omitempty"`
	Candidates      int     `json:"candidates"`
	PlacedNeighbors []int   `json:"placed_neighbors,omitempty"`
}

// TermInfo is one CPhase term selected into a layer, with its logical
// endpoints, their current physical positions, and the live distance
// (hops for IC, reliability-weighted for VIC) that ranked it.
type TermInfo struct {
	U    int     `json:"u"`
	V    int     `json:"v"`
	PU   int     `json:"pu"`
	PV   int     `json:"pv"`
	Dist float64 `json:"dist"`
}

// LayerInfo records one incremental layer-formation decision: the terms
// packed into layer Index of QAOA level Level, and how many remaining
// terms were deferred to later layers.
type LayerInfo struct {
	Index    int        `json:"index"`
	Level    int        `json:"level"`
	Terms    []TermInfo `json:"terms"`
	Deferred int        `json:"deferred"`
}

// SwapInfo records one inserted SWAP on physical qubits (P1, P2): the
// distance weight it paid (Cost — 1 for hop routing, the edge's
// reliability weight for VIC), the pending-distance improvement that
// justified it (Gain; 0 for forced path walks), and the full
// logical→physical layout before and after, so the layout history can be
// replayed step by step. RoutingLayer is the ASAP layer of the routed
// circuit the SWAP served.
type SwapInfo struct {
	P1           int     `json:"p1"`
	P2           int     `json:"p2"`
	Cost         float64 `json:"cost"`
	Gain         float64 `json:"gain,omitempty"`
	Forced       bool    `json:"forced,omitempty"`
	RoutingLayer int     `json:"routing_layer"`
	Before       []int   `json:"before"`
	After        []int   `json:"after"`
}

// StitchInfo records one partial-circuit stitch: incremental layer Layer
// contributed Gates gates (including Swaps SWAPs) to the output circuit.
type StitchInfo struct {
	Layer int `json:"layer"`
	Gates int `json:"gates"`
	Swaps int `json:"swaps"`
}

// FallbackInfo records one step of the degradation ladder: the preset that
// was attempted, the zero-based retry within its rung, and the error it
// failed with. Final marks the attempt that produced the returned circuit
// (Err empty).
type FallbackInfo struct {
	Preset string `json:"preset"`
	Retry  int    `json:"retry"`
	Err    string `json:"err,omitempty"`
	Final  bool   `json:"final,omitempty"`
}

// Event is one trace record. Exactly one payload pointer is non-nil,
// matching Kind; Pass carries the pass name for pass-bracket events and
// the owning pass for decision events. TimeUS is microseconds since the
// tracer was created — the only non-deterministic field, zeroed by
// StripTimes for byte-stable comparisons.
type Event struct {
	Seq       int            `json:"seq"`
	TimeUS    int64          `json:"t_us"`
	Kind      Kind           `json:"kind"`
	Pass      string         `json:"pass,omitempty"`
	Meta      *MetaInfo      `json:"meta,omitempty"`
	Placement *PlacementInfo `json:"placement,omitempty"`
	Layer     *LayerInfo     `json:"layer,omitempty"`
	Swap      *SwapInfo      `json:"swap,omitempty"`
	Stitch    *StitchInfo    `json:"stitch,omitempty"`
	Fallback  *FallbackInfo  `json:"fallback,omitempty"`
}

// Tracer accumulates the ordered event stream. The zero value is not
// usable; construct with New. A nil *Tracer is a valid disabled tracer:
// all methods no-op. A non-nil Tracer is safe for concurrent use, though a
// single compilation emits sequentially.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// New returns an empty enabled tracer whose clock starts now.
func New() *Tracer { return &Tracer{start: time.Now()} } //lint:allow determinism: trace epoch; timestamps are stripped for deterministic comparison

// Enabled reports whether the tracer records anything (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// emit stamps and appends one event.
func (t *Tracer) emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = len(t.events)
	e.TimeUS = time.Since(t.start).Microseconds() //lint:allow determinism: event timestamp; stripped by StripTimes before comparison
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Meta records the compilation's identity; call once at the start.
func (t *Tracer) Meta(m MetaInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindMeta, Meta: &m})
}

// BeginPass / EndPass bracket the named pass for the timeline exporters.
func (t *Tracer) BeginPass(pass string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindPassBegin, Pass: pass})
}

// EndPass closes the named pass opened by BeginPass.
func (t *Tracer) EndPass(pass string) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindPassEnd, Pass: pass})
}

// Placement records one initial-mapping decision (map pass).
func (t *Tracer) Placement(p PlacementInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindPlacement, Pass: "map", Placement: &p})
}

// Layer records one incremental layer-formation decision (order pass).
func (t *Tracer) Layer(l LayerInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindLayer, Pass: "order", Layer: &l})
}

// Swap records one inserted SWAP (route pass).
func (t *Tracer) Swap(s SwapInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindSwap, Pass: "route", Swap: &s})
}

// Stitch records one partial-circuit stitch boundary (stitch pass).
func (t *Tracer) Stitch(s StitchInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindStitch, Pass: "stitch", Stitch: &s})
}

// Fallback records one step of the degradation ladder.
func (t *Tracer) Fallback(f FallbackInfo) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindFallback, Pass: "fallback", Fallback: &f})
}

// Len returns the number of recorded events (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded stream (nil on a nil tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset discards every recorded event and restarts the clock. No-op on nil.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.start = time.Now() //lint:allow determinism: trace epoch reset; timestamps are stripped for comparison
	t.mu.Unlock()
}

// StripTimes zeroes the timestamp of every event in place — the only
// non-deterministic field — so two fixed-seed traces compare byte for
// byte.
func StripTimes(events []Event) {
	for i := range events {
		events[i].TimeUS = 0
	}
}

// Header is the first line of a JSONL export, identifying the schema.
type Header struct {
	TraceSchema int `json:"trace_schema"`
}

// WriteJSONL writes the stream as JSON Lines: a schema header line
// followed by one event per line, in emission order. With strip true the
// timestamps are zeroed in the output (the events slice is not modified),
// making the stream byte-identical across fixed-seed runs.
func WriteJSONL(w io.Writer, events []Event, strip bool) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(Header{TraceSchema: SchemaVersion}); err != nil {
		return fmt.Errorf("trace: writing JSONL header: %w", err)
	}
	for _, e := range events {
		if strip {
			e.TimeUS = 0
		}
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: writing JSONL event %d: %w", e.Seq, err)
		}
	}
	return nil
}

// ReadJSONL parses a stream produced by WriteJSONL, checking the schema.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL header: %w", err)
	}
	if h.TraceSchema != SchemaVersion {
		return nil, fmt.Errorf("trace: stream schema %d, this build reads %d", h.TraceSchema, SchemaVersion)
	}
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading JSONL event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
