package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleEvents builds a small but kind-complete stream by hand.
func sampleEvents() []Event {
	tr := New()
	tr.Meta(MetaInfo{
		Device:   "toy",
		NQubits:  4,
		Coupling: [][2]int{{0, 1}, {1, 2}, {2, 3}},
		NLogical: 3,
		Mapper:   "qaim",
		Strategy: "ic",
	})
	tr.BeginPass("map")
	tr.Placement(PlacementInfo{Logical: 0, Phys: 1, Strength: 3, Candidates: 4})
	tr.Placement(PlacementInfo{Logical: 1, Phys: 2, Strength: 2, Score: 1.5, Candidates: 2, PlacedNeighbors: []int{1}})
	tr.EndPass("map")
	tr.BeginPass("order")
	tr.Layer(LayerInfo{Index: 0, Level: 0, Terms: []TermInfo{{U: 0, V: 1, PU: 1, PV: 2, Dist: 1}}, Deferred: 1})
	tr.EndPass("order")
	tr.BeginPass("route")
	tr.Swap(SwapInfo{P1: 2, P2: 3, Cost: 1, Gain: 1, RoutingLayer: 0, Before: []int{1, 2, 0}, After: []int{1, 3, 0}})
	tr.Swap(SwapInfo{P1: 0, P2: 1, Cost: 1, Forced: true, RoutingLayer: 1, Before: []int{1, 3, 0}, After: []int{0, 3, 1}})
	tr.EndPass("route")
	tr.Stitch(StitchInfo{Layer: 0, Gates: 5, Swaps: 2})
	tr.Fallback(FallbackInfo{Preset: "VIC", Err: "vic requires device calibration on toy"})
	tr.Fallback(FallbackInfo{Preset: "IC", Final: true})
	return tr.Events()
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Meta(MetaInfo{})
	tr.BeginPass("map")
	tr.EndPass("map")
	tr.Placement(PlacementInfo{})
	tr.Layer(LayerInfo{})
	tr.Swap(SwapInfo{})
	tr.Stitch(StitchInfo{})
	tr.Fallback(FallbackInfo{})
	tr.Reset()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

func TestTracerSequencing(t *testing.T) {
	events := sampleEvents()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
		if e.TimeUS < 0 {
			t.Errorf("event %d has negative timestamp %d", i, e.TimeUS)
		}
	}
	if events[0].Kind != KindMeta {
		t.Errorf("first event is %q, want meta", events[0].Kind)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(events))
	}
	want, _ := json.Marshal(events)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Errorf("round-trip changed the stream:\nwant %s\ngot  %s", want, have)
	}
}

func TestJSONLStripRemovesOnlyTimestamps(t *testing.T) {
	events := sampleEvents()
	var stripped bytes.Buffer
	if err := WriteJSONL(&stripped, events, true); err != nil {
		t.Fatal(err)
	}
	// The source slice must be untouched (strip copies per event).
	anyTime := false
	for _, e := range events {
		if e.TimeUS != 0 {
			anyTime = true
		}
	}
	_ = anyTime // timestamps may legitimately all be 0 on a fast machine
	got, err := ReadJSONL(bytes.NewReader(stripped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range got {
		if e.TimeUS != 0 {
			t.Errorf("stripped event %d still has t_us %d", i, e.TimeUS)
		}
	}
	// StripTimes zeroes in place.
	StripTimes(events)
	for i, e := range events {
		if e.TimeUS != 0 {
			t.Errorf("StripTimes left t_us %d on event %d", e.TimeUS, i)
		}
	}
}

func TestReadJSONLRejectsWrongSchema(t *testing.T) {
	in := `{"trace_schema":999}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("schema 999 accepted")
	} else if !strings.Contains(err.Error(), "999") {
		t.Errorf("schema error does not name the version: %v", err)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string          `json:"name"`
			Phase string          `json:"ph"`
			TS    int64           `json:"ts"`
			PID   int             `json:"pid"`
			TID   int             `json:"tid"`
			Args  json.RawMessage `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no traceEvents")
	}
	phases := map[string]int{}
	swaps := 0
	for _, e := range doc.TraceEvents {
		phases[e.Phase]++
		if strings.HasPrefix(e.Name, "SWAP") {
			swaps++
		}
	}
	if phases["M"] == 0 {
		t.Error("no metadata events (process/thread names) emitted")
	}
	if phases["B"] == 0 || phases["E"] == 0 {
		t.Error("no duration events for pass brackets")
	}
	if phases["B"] != phases["E"] {
		t.Errorf("unbalanced pass brackets: %d B vs %d E", phases["B"], phases["E"])
	}
	if phases["i"] == 0 {
		t.Error("no instant events for decisions")
	}
	if swaps == 0 {
		t.Error("no SWAP instants in the chrome export")
	}
}

func TestExplainRendersHeatmapAndTimeline(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	WriteExplain(&buf, events)
	out := buf.String()
	for _, want := range []string{"toy", "SWAP", "layer", "fallback"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestDOTOutputIsWellFormed(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	WriteDOT(&buf, events)
	out := buf.String()
	if !strings.HasPrefix(out, "graph ") {
		t.Errorf("DOT output does not start with a graph declaration:\n%s", out)
	}
	if !strings.Contains(out, "2 -- 3") && !strings.Contains(out, "3 -- 2") {
		t.Errorf("DOT output missing the swapped edge 2-3:\n%s", out)
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Errorf("unbalanced braces in DOT output:\n%s", out)
	}
}
