package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// as consumed by Perfetto and chrome://tracing. Only the fields the
// exporter uses are modeled.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object-form container Perfetto accepts.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track ids: one Perfetto track per pass, so the timeline shows mapping,
// ordering, routing, stitching and the fallback ladder as parallel lanes.
var chromeTracks = []struct {
	tid  int
	pass string
}{
	{1, "map"},
	{2, "order"},
	{3, "route"},
	{4, "stitch"},
	{5, "fallback"},
}

func chromeTID(pass string) int {
	for _, t := range chromeTracks {
		if t.pass == pass {
			return t.tid
		}
	}
	return 0
}

// WriteChromeTrace exports the stream as Chrome trace-event JSON: pass
// brackets become B/E duration slices on per-pass tracks, and every
// decision event (placement, layer, SWAP, stitch, fallback) becomes a
// thread-scoped instant on its pass's track carrying the full payload in
// args. Open the file in https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []Event) error {
	const pid = 1
	out := chromeTrace{DisplayTimeUnit: "ms"}

	// Name the process and tracks first so the UI labels the lanes.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": "qaoa-compile"},
	})
	for _, t := range chromeTracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: t.tid,
			Args: map[string]any{"name": t.pass},
		})
	}

	for _, e := range events {
		switch e.Kind {
		case KindMeta:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "compilation", Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("map"), Scope: "p",
				Args: map[string]any{
					"device": e.Meta.Device, "n_qubits": e.Meta.NQubits,
					"n_logical": e.Meta.NLogical, "mapper": e.Meta.Mapper,
					"strategy": e.Meta.Strategy,
				},
			})
		case KindPassBegin:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Pass, Phase: "B", TS: e.TimeUS, PID: pid, TID: chromeTID(e.Pass),
			})
		case KindPassEnd:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Pass, Phase: "E", TS: e.TimeUS, PID: pid, TID: chromeTID(e.Pass),
			})
		case KindPlacement:
			p := e.Placement
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  fmt.Sprintf("place q%d→%d", p.Logical, p.Phys),
				Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("map"), Scope: "t",
				Args: map[string]any{
					"logical": p.Logical, "phys": p.Phys, "strength": p.Strength,
					"score": p.Score, "candidates": p.Candidates,
				},
			})
		case KindLayer:
			l := e.Layer
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  fmt.Sprintf("layer %d", l.Index),
				Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("order"), Scope: "t",
				Args: map[string]any{
					"index": l.Index, "level": l.Level,
					"terms": len(l.Terms), "deferred": l.Deferred,
				},
			})
		case KindSwap:
			s := e.Swap
			name := fmt.Sprintf("SWAP %d↔%d", s.P1, s.P2)
			if s.Forced {
				name += " (forced)"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("route"), Scope: "t",
				Args: map[string]any{
					"p1": s.P1, "p2": s.P2, "cost": s.Cost, "gain": s.Gain,
					"forced": s.Forced, "routing_layer": s.RoutingLayer,
					"before": s.Before, "after": s.After,
				},
			})
		case KindStitch:
			st := e.Stitch
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  fmt.Sprintf("stitch layer %d", st.Layer),
				Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("stitch"), Scope: "t",
				Args: map[string]any{"layer": st.Layer, "gates": st.Gates, "swaps": st.Swaps},
			})
		case KindFallback:
			f := e.Fallback
			name := fmt.Sprintf("%s attempt %d failed", f.Preset, f.Retry)
			if f.Final {
				name = fmt.Sprintf("%s selected", f.Preset)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Phase: "i", TS: e.TimeUS, PID: pid, TID: chromeTID("fallback"), Scope: "t",
				Args: map[string]any{"preset": f.Preset, "retry": f.Retry, "err": f.Err, "final": f.Final},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: writing chrome trace: %w", err)
	}
	return nil
}
