package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// edgeKey normalizes an undirected physical edge.
func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// swapHeat tallies SWAPs (and the distance they paid) per physical edge.
func swapHeat(events []Event) (heat map[[2]int]int, cost map[[2]int]float64) {
	heat = make(map[[2]int]int)
	cost = make(map[[2]int]float64)
	for _, e := range events {
		if e.Kind != KindSwap {
			continue
		}
		k := edgeKey(e.Swap.P1, e.Swap.P2)
		heat[k]++
		cost[k] += e.Swap.Cost
	}
	return heat, cost
}

// findMeta returns the stream's meta event, if any.
func findMeta(events []Event) *MetaInfo {
	for _, e := range events {
		if e.Kind == KindMeta {
			return e.Meta
		}
	}
	return nil
}

// WriteExplain renders the stream for terminal debugging: the compilation
// header, a per-edge SWAP heatmap (which couplers paid for the routing,
// the Fig. 5/6 view), the incremental layer timeline with per-layer SWAP
// and stitch accounting, and the fallback ladder when it fired.
func WriteExplain(w io.Writer, events []Event) {
	meta := findMeta(events)
	if meta != nil {
		fmt.Fprintf(w, "compilation: %s/%s on %s (%d qubits), %d logical\n",
			meta.Mapper, meta.Strategy, meta.Device, meta.NQubits, meta.NLogical)
	}

	// Placement summary.
	var placements []*PlacementInfo
	for _, e := range events {
		if e.Kind == KindPlacement {
			placements = append(placements, e.Placement)
		}
	}
	if len(placements) > 0 {
		fmt.Fprintf(w, "\ninitial placement (%d decisions):\n", len(placements))
		for _, p := range placements {
			anchor := ""
			if len(p.PlacedNeighbors) > 0 {
				anchor = fmt.Sprintf(" near %v (score %.3f)", p.PlacedNeighbors, p.Score)
			}
			fmt.Fprintf(w, "  q%-3d → %-3d strength %-3d of %d candidates%s\n",
				p.Logical, p.Phys, p.Strength, p.Candidates, anchor)
		}
	}

	// SWAP heatmap, hottest edge first.
	heat, cost := swapHeat(events)
	if len(heat) > 0 {
		type row struct {
			k [2]int
			n int
		}
		rows := make([]row, 0, len(heat))
		max := 0
		total := 0
		for k, n := range heat {
			rows = append(rows, row{k, n})
			if n > max {
				max = n
			}
			total += n
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].k[0] < rows[j].k[0] || (rows[i].k[0] == rows[j].k[0] && rows[i].k[1] < rows[j].k[1])
		})
		fmt.Fprintf(w, "\nSWAP heatmap (%d swaps over %d edges):\n", total, len(rows))
		for _, r := range rows {
			bar := strings.Repeat("█", r.n*24/max)
			if bar == "" {
				bar = "▏"
			}
			fmt.Fprintf(w, "  %3d–%-3d %4d  dist %-7.3g %s\n", r.k[0], r.k[1], r.n, cost[r.k], bar)
		}
	} else {
		fmt.Fprintf(w, "\nno SWAPs inserted\n")
	}

	// Layer timeline: pair layer events with the swap/stitch activity that
	// followed them.
	var timeline []string
	var cur *LayerInfo
	curSwaps := 0
	flush := func(st *StitchInfo) {
		if cur == nil {
			return
		}
		maxD := 0.0
		for _, t := range cur.Terms {
			if t.Dist > maxD {
				maxD = t.Dist
			}
		}
		line := fmt.Sprintf("  layer %3d (level %d): %2d terms (max dist %.3g), %d deferred, %d swaps",
			cur.Index, cur.Level, len(cur.Terms), maxD, cur.Deferred, curSwaps)
		if st != nil {
			line += fmt.Sprintf(", stitched %d gates", st.Gates)
		}
		timeline = append(timeline, line)
		cur, curSwaps = nil, 0
	}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindLayer:
			flush(nil)
			cur = e.Layer
		case KindSwap:
			if cur != nil {
				curSwaps++
			}
		case KindStitch:
			flush(e.Stitch)
		}
	}
	flush(nil)
	if len(timeline) > 0 {
		fmt.Fprintf(w, "\nlayer timeline:\n")
		for _, l := range timeline {
			fmt.Fprintln(w, l)
		}
	}

	// Fallback ladder.
	var fallbacks []*FallbackInfo
	for _, e := range events {
		if e.Kind == KindFallback {
			fallbacks = append(fallbacks, e.Fallback)
		}
	}
	if len(fallbacks) > 0 {
		fmt.Fprintf(w, "\nfallback ladder:\n")
		for _, f := range fallbacks {
			if f.Final {
				fmt.Fprintf(w, "  %s selected (retry %d)\n", f.Preset, f.Retry)
			} else {
				fmt.Fprintf(w, "  %s attempt %d failed: %s\n", f.Preset, f.Retry, f.Err)
			}
		}
	}
}

// WriteDOT renders the device coupling graph as Graphviz DOT with edges
// colored and weighted by how many SWAPs routing paid on them — the
// per-edge heatmap in a form layout tools can draw. The coupling graph
// comes from the stream's meta event; without one, only swapped edges are
// drawn.
func WriteDOT(w io.Writer, events []Event) {
	heat, _ := swapHeat(events)
	meta := findMeta(events)

	max := 0
	for _, n := range heat {
		if n > max {
			max = n
		}
	}

	fmt.Fprintln(w, "graph swap_heat {")
	fmt.Fprintln(w, "  node [shape=circle fontsize=10];")
	if meta != nil {
		fmt.Fprintf(w, "  label=\"SWAP heatmap: %s/%s on %s\";\n", meta.Mapper, meta.Strategy, meta.Device)
		for q := 0; q < meta.NQubits; q++ {
			fmt.Fprintf(w, "  %d;\n", q)
		}
		for _, e := range meta.Coupling {
			k := edgeKey(e[0], e[1])
			n := heat[k]
			if n == 0 {
				fmt.Fprintf(w, "  %d -- %d [color=gray80];\n", k[0], k[1])
			} else {
				// Shade 0..9 on the Graphviz reds9 scheme, hottest darkest.
				shade := 1
				if max > 0 {
					shade = 1 + n*8/max
				}
				fmt.Fprintf(w, "  %d -- %d [label=%d color=\"/reds9/%d\" penwidth=%d];\n",
					k[0], k[1], n, shade, 1+n*4/maxInt(max, 1))
			}
		}
	} else {
		keys := make([][2]int, 0, len(heat))
		for k := range heat {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
		})
		for _, k := range keys {
			fmt.Fprintf(w, "  %d -- %d [label=%d];\n", k[0], k[1], heat[k])
		}
	}
	fmt.Fprintln(w, "}")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
