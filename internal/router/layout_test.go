package router

import "testing"

func TestNewLayoutValid(t *testing.T) {
	l, err := NewLayout(3, 5, []int{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Phys(0) != 4 || l.Phys(1) != 0 || l.Phys(2) != 2 {
		t.Errorf("L2P = %v", l.L2P)
	}
	if l.LogicalAt(4) != 0 || l.LogicalAt(1) != -1 || l.LogicalAt(3) != -1 {
		t.Errorf("P2L = %v", l.P2L)
	}
	if l.NLogical() != 3 || l.NPhysical() != 5 {
		t.Error("shape wrong")
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(2, 5, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := NewLayout(6, 5, []int{0, 1, 2, 3, 4, 4}); err == nil {
		t.Error("oversubscribed device accepted")
	}
	if _, err := NewLayout(2, 5, []int{0, 0}); err == nil {
		t.Error("non-injective assignment accepted")
	}
	if _, err := NewLayout(2, 5, []int{0, 7}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestTrivialLayout(t *testing.T) {
	l := TrivialLayout(3, 6)
	for q := 0; q < 3; q++ {
		if l.Phys(q) != q {
			t.Errorf("Phys(%d) = %d", q, l.Phys(q))
		}
	}
	for p := 3; p < 6; p++ {
		if l.LogicalAt(p) != -1 {
			t.Errorf("LogicalAt(%d) = %d, want -1", p, l.LogicalAt(p))
		}
	}
}

func TestSwapPhysical(t *testing.T) {
	l, _ := NewLayout(2, 4, []int{0, 1})
	l.SwapPhysical(1, 2) // logical 1 moves to physical 2
	if l.Phys(1) != 2 || l.LogicalAt(2) != 1 || l.LogicalAt(1) != -1 {
		t.Errorf("after swap: L2P=%v P2L=%v", l.L2P, l.P2L)
	}
	l.SwapPhysical(0, 2) // swap two occupied
	if l.Phys(0) != 2 || l.Phys(1) != 0 {
		t.Errorf("after second swap: L2P=%v", l.L2P)
	}
	l.SwapPhysical(3, 1) // two free qubits: no-op on L2P
	if l.Phys(0) != 2 || l.Phys(1) != 0 {
		t.Errorf("free-free swap changed mapping: %v", l.L2P)
	}
}

func TestSwapPhysicalInvolution(t *testing.T) {
	l, _ := NewLayout(3, 5, []int{2, 4, 0})
	ref := l.Clone()
	l.SwapPhysical(2, 4)
	l.SwapPhysical(2, 4)
	if !l.Equal(ref) {
		t.Error("double swap is not identity")
	}
}

func TestCloneIndependent(t *testing.T) {
	l, _ := NewLayout(2, 3, []int{0, 1})
	c := l.Clone()
	c.SwapPhysical(0, 2)
	if l.Phys(0) != 0 {
		t.Error("clone shares storage")
	}
	if l.Equal(c) {
		t.Error("Equal true after divergence")
	}
}

func TestLayoutString(t *testing.T) {
	l, _ := NewLayout(2, 3, []int{2, 0})
	if got := l.String(); got != "{q0→2 q1→0}" {
		t.Errorf("String = %q", got)
	}
}
