package router

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/device"
)

// TestRouteTrialsGOMAXPROCSIndependent is the determinism contract of the
// parallel trial fan-out: the same seed must produce a byte-identical
// Result whether the trials run on one worker (the sequential path) or
// many. Run under -race in CI, this also exercises the fan-out for data
// races.
func TestRouteTrialsGOMAXPROCSIndependent(t *testing.T) {
	dev := device.Tokyo20()
	rng := rand.New(rand.NewSource(3))
	circ := randomRoutingCircuit(16, 60, rng)

	route := func(procs int) *Result {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		r := New(dev)
		r.Trials = 8
		r.Rng = rand.New(rand.NewSource(99))
		res, err := r.Route(circ, nil)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		return res
	}

	serial := route(1)
	for _, procs := range []int{2, 4, 8} {
		parallel := route(procs)
		if parallel.SwapCount != serial.SwapCount {
			t.Errorf("GOMAXPROCS=%d: SwapCount %d, serial %d", procs, parallel.SwapCount, serial.SwapCount)
		}
		if !reflect.DeepEqual(parallel.Circuit.Gates, serial.Circuit.Gates) {
			t.Errorf("GOMAXPROCS=%d: routed gates diverge from the serial run", procs)
		}
		if !parallel.Final.Equal(serial.Final) {
			t.Errorf("GOMAXPROCS=%d: final layout %v, serial %v", procs, parallel.Final, serial.Final)
		}
	}
}
