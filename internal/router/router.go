package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// DisconnectedError reports that routing required moving a qubit between two
// physical qubits with no coupling path — the signature failure of a
// degraded device whose coupling graph has been severed.
type DisconnectedError struct {
	Device string
	A, B   int
}

func (e *DisconnectedError) Error() string {
	return fmt.Sprintf("router: physical qubits %d and %d disconnected on %s", e.A, e.B, e.Device)
}

// ErrTrialsWithoutRng reports the Router misuse of requesting stochastic
// trials (Trials > 1) without supplying the Rng that seeds their shuffles.
// Compare with errors.Is.
var ErrTrialsWithoutRng = errors.New("router: Trials > 1 requires Rng")

// errTrialPruned aborts a stochastic trial that exceeded the pruning cap
// (see routeTrials); it never escapes the router.
var errTrialPruned = errors.New("router: trial pruned")

// noSwapCap disables trial pruning (single-shot routing, trial 0, traced
// replays).
const noSwapCap = math.MaxInt

// Router inserts SWAPs to make a logical circuit comply with a device's
// coupling constraints. It is the layer-partitioning heuristic backend the
// paper describes for conventional compilers (§III "SWAP Insertion"): the
// circuit is split into layers of concurrently executable gates and SWAPs
// are added before each layer until all of its two-qubit gates touch
// coupled pairs.
type Router struct {
	// Dev is the routing target.
	Dev *device.Device
	// Dist supplies inter-qubit distances for SWAP scoring and path
	// selection. IC uses hop distances; VIC passes reliability-weighted
	// distances so SWAP chains prefer reliable links. Defaults to the
	// device's hop distances.
	Dist *graphs.DistanceMatrix
	// LookaheadWeight blends the next layer's gate distances into the SWAP
	// score (0 disables lookahead; default 0.5).
	LookaheadWeight float64
	// Trials > 1 routes the circuit that many times with randomized
	// tie-breaking (a shuffled coupling-edge scan order, seeded by Rng) and
	// keeps the attempt with the fewest SWAPs — the stochastic-swap
	// strategy of conventional compilers. Trials ≤ 1 is single-shot
	// deterministic routing. The attempts are independent by construction
	// and run in parallel across GOMAXPROCS workers; see routeTrials for
	// the determinism contract that keeps the result identical regardless
	// of core count.
	Trials int
	// Rng seeds the trial shuffles; required when Trials > 1. It is only
	// consulted in the sequential prologue of routeTrials (never from the
	// worker goroutines), so a single seeded source is safe and the draw
	// sequence is schedule-independent.
	Rng *rand.Rand
	// Obs, when non-nil, receives routing counters: router/routes,
	// router/layers, router/swaps, router/forced_paths, router/trials,
	// and the deterministic scoring-work counters router/score_evals and
	// compile/dist_updates. Counters are batched per routing call, so the
	// per-gate hot loop never touches the collector.
	Obs *obsv.Collector
	// Trace, when non-nil, receives one event per inserted SWAP carrying
	// the (before, after) layout and the distance the SWAP paid. With
	// Trials > 1 the stochastic attempts run untraced and the winning
	// attempt is re-routed once with tracing, so the stream tells the story
	// of the kept circuit only.
	Trace *trace.Tracer

	// edgeOrder overrides the coupling-edge scan order for tie-breaking
	// (nil: the device's canonical order).
	edgeOrder []graphs.Edge
}

// New returns a Router over dev using hop distances and default lookahead.
func New(dev *device.Device) *Router {
	return &Router{Dev: dev, Dist: dev.HopDistances(), LookaheadWeight: 0.5}
}

// Result is a routed circuit plus layout bookkeeping.
type Result struct {
	// Circuit is the hardware-compliant physical circuit (register size =
	// device qubits). Two-qubit gates act only on coupling edges.
	Circuit *circuit.Circuit
	// Initial and Final are the layouts before and after routing.
	Initial, Final *Layout
	// SwapCount is the number of SWAP gates inserted.
	SwapCount int
}

// Route compiles the logical circuit c onto the device starting from the
// given initial layout (TrivialLayout when nil). The input gate order is
// respected up to concurrency: gates are processed in ASAP layers. With
// Trials > 1 the best of several randomized-tie-break attempts is returned.
func (r *Router) Route(c *circuit.Circuit, initial *Layout) (*Result, error) {
	return r.RouteContext(context.Background(), c, initial)
}

// RouteContext is Route honoring a deadline/cancellation: the routing loop
// checks ctx between layers and between SWAP insertions and returns a
// ctx-wrapped error as soon as the context is done.
func (r *Router) RouteContext(ctx context.Context, c *circuit.Circuit, initial *Layout) (*Result, error) {
	initial, dist, err := r.validate(c, initial)
	if err != nil {
		return nil, err
	}
	plan := buildPlan(c, r.LookaheadWeight > 0)
	tab := buildDevTables(r.Dev, dist)
	if r.Trials > 1 {
		return r.routeTrials(ctx, plan, initial, dist, tab)
	}
	return r.routePlanned(ctx, plan, initial, dist, tab, noSwapCap)
}

// validate checks the circuit/layout/device shapes once per Route call and
// resolves the defaults (trivial layout, hop distances).
func (r *Router) validate(c *circuit.Circuit, initial *Layout) (*Layout, *graphs.DistanceMatrix, error) {
	dev := r.Dev
	if c.NQubits > dev.NQubits() {
		return nil, nil, fmt.Errorf("router: circuit needs %d qubits, device %s has %d", c.NQubits, dev.Name, dev.NQubits())
	}
	if initial == nil {
		initial = TrivialLayout(c.NQubits, dev.NQubits())
	}
	if initial.NLogical() != c.NQubits || initial.NPhysical() != dev.NQubits() {
		return nil, nil, fmt.Errorf("router: layout shape (%d,%d) does not match circuit %d / device %d",
			initial.NLogical(), initial.NPhysical(), c.NQubits, dev.NQubits())
	}
	dist := r.Dist
	if dist == nil {
		dist = dev.HopDistances()
	}
	return initial, dist, nil
}

// layerPlan is the routing work of one ASAP layer, precomputed once per
// Route call and shared read-only by every stochastic trial: the one-qubit
// gates to pass through, the two-qubit gates to route, and the next
// layer's two-qubit gates feeding the lookahead score.
type layerPlan struct {
	oneQ []circuit.Gate
	twoQ []circuit.Gate
	next []circuit.Gate
}

// routePlan is the shared per-call routing plan plus the input gate total
// (the output-circuit presizing hint).
type routePlan struct {
	layers []layerPlan
	gates  int
}

// buildPlan partitions c into ASAP layers split by arity. With lookahead
// enabled, each layer references the next layer's two-qubit gates.
func buildPlan(c *circuit.Circuit, lookahead bool) *routePlan {
	layers := c.Layers()
	plan := &routePlan{layers: make([]layerPlan, len(layers)), gates: len(c.Gates)}
	for li, layer := range layers {
		lp := &plan.layers[li]
		for _, gi := range layer {
			g := c.Gates[gi]
			switch g.Arity() {
			case 1:
				lp.oneQ = append(lp.oneQ, g)
			case 2:
				lp.twoQ = append(lp.twoQ, g)
			}
		}
	}
	if lookahead {
		for li := 0; li+1 < len(plan.layers); li++ {
			plan.layers[li].next = plan.layers[li+1].twoQ
		}
	}
	return plan
}

// trial is the one construction path for a stochastic routing attempt: the
// same device, distances and collector as the parent, the trial's edge
// scan order, single-shot, untraced (only the kept attempt is re-routed
// with tracing).
func (r *Router) trial(order []graphs.Edge) *Router {
	t := *r
	t.Trials = 0
	t.Trace = nil
	t.edgeOrder = order
	return &t
}

// routeTrials runs Trials randomized attempts and keeps the fewest-SWAP one
// (ties: lowest trial index). Trial 0 — the canonical, unshuffled scan
// order — runs first and fixes the pruning cap: a later attempt that
// reaches trial 0's swap count can no longer win (it would at best tie, and
// ties go to the lowest index), so it aborts on the spot. The remaining
// trials then run in parallel across min(GOMAXPROCS, Trials-1) workers.
//
// Determinism contract: trial randomness is exactly the shuffled edge scan
// order, and every shuffle is drawn from Rng in a cheap sequential prologue
// before the fan-out — the per-trial analogue of the simulator's splitmix64
// substreams. Routing itself is a pure function of (circuit, layout, edge
// order, pruning cap), the cap is fixed before any worker starts, and the
// reduction is by (SwapCount, trial index), so the returned Result is
// byte-identical regardless of GOMAXPROCS and identical to a sequential
// best-of-N loop without pruning. On the success path the batched counters
// are sums over all trials and equally schedule-independent; on an error
// path, in-flight trials may add work to the counters that a sequential
// loop would not have started.
func (r *Router) routeTrials(ctx context.Context, plan *routePlan, initial *Layout, dist *graphs.DistanceMatrix, tab *devTables) (*Result, error) {
	if r.Rng == nil {
		return nil, ErrTrialsWithoutRng
	}
	r.Obs.Add(obsv.CntRouterTrials, int64(r.Trials))

	// Sequential prologue: fix every trial's edge order before any worker
	// starts. Trial 0 keeps the canonical order (the deterministic
	// single-shot attempt); trials 1..n-1 shuffle it.
	canonical := r.Dev.Coupling.Edges()
	m := len(canonical)
	buf := make([]graphs.Edge, (r.Trials-1)*m) // one backing array for all shuffles
	orders := make([][]graphs.Edge, r.Trials)
	for t := 1; t < r.Trials; t++ {
		order := buf[(t-1)*m : t*m : t*m]
		copy(order, canonical)
		r.Rng.Shuffle(m, func(i, j int) { order[i], order[j] = order[j], order[i] })
		orders[t] = order
	}

	first, err := r.trial(nil).routePlanned(ctx, plan, initial, dist, tab, noSwapCap)
	if err != nil {
		return nil, err
	}
	swapCap := first.SwapCount - 1

	results := make([]*Result, r.Trials)
	results[0] = first
	errs := make([]error, r.Trials)
	workers := min(runtime.GOMAXPROCS(0), r.Trials-1)
	if workers <= 1 {
		for t := 1; t < r.Trials; t++ {
			res, err := r.trial(orders[t]).routePlanned(ctx, plan, initial, dist, tab, swapCap)
			if errors.Is(err, errTrialPruned) {
				continue
			}
			if err != nil {
				return nil, err
			}
			results[t] = res
		}
	} else {
		// Work-stealing fan-out: trials are claimed in index order from an
		// atomic cursor; a failure stops further claims (in-flight trials
		// finish on their own — they honor ctx themselves), which
		// guarantees every trial below the lowest failing index has run, so
		// the error reduction below is schedule-independent.
		var cursor, failed atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for failed.Load() == 0 && ctx.Err() == nil {
					t := int(cursor.Add(1))
					if t >= r.Trials {
						return
					}
					res, err := r.trial(orders[t]).routePlanned(ctx, plan, initial, dist, tab, swapCap)
					if errors.Is(err, errTrialPruned) {
						continue
					}
					if err != nil {
						errs[t] = err
						failed.Store(1)
						return
					}
					results[t] = res
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("router: %w", err)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	win := 0
	for t := 1; t < r.Trials; t++ {
		if results[t] != nil && results[t].SwapCount < results[win].SwapCount {
			win = t
		}
	}
	if r.Trace.Enabled() {
		// Replay the winning attempt with tracing: routing is deterministic
		// given the edge scan order, so the replayed result is the one
		// returned and the trace describes exactly it.
		replay := r.trial(orders[win])
		replay.Trace = r.Trace
		res, err := replay.routePlanned(ctx, plan, initial, dist, tab, noSwapCap)
		if err == nil {
			recycleTrials(results, -1)
		}
		return res, err
	}
	recycleTrials(results, win)
	return results[win], nil
}

// recycleTrials returns the losing trials' final layouts and routed
// circuits to their pools (the winner's, index keep, escape to the caller;
// pass -1 to recycle every trial, used after a traced replay superseded
// them all).
func recycleTrials(results []*Result, keep int) {
	for t, res := range results {
		if t != keep && res != nil {
			putLayout(res.Final)
			putCircuit(res.Circuit)
		}
	}
}

// routePlanned performs one deterministic routing pass over the shared
// plan, aborting with errTrialPruned as soon as the inserted-SWAP total
// exceeds swapCap (noSwapCap disables pruning). It is the single-trial
// execution core: every allocation it makes beyond the returned Result
// comes from pooled scratch (layout clone, scoring state), so stochastic
// trials are cheap and GC-quiet.
func (r *Router) routePlanned(ctx context.Context, plan *routePlan, initial *Layout, dist *graphs.DistanceMatrix, tab *devTables, swapCap int) (*Result, error) {
	layout := getLayout(initial)
	// Presize for the common case: every input gate plus a swap allowance;
	// heavy routing still grows the slice, it just starts realistic.
	out := getCircuit(r.Dev.NQubits(), plan.gates+plan.gates/2+8)
	sc := getScorer()
	sc.evals, sc.updates = 0, 0 // pooled scorers may carry another call's tallies
	defer putScorer(sc)
	swaps := 0
	var rerr error

	for li := range plan.layers {
		if err := ctx.Err(); err != nil {
			rerr = fmt.Errorf("router: %w", err)
			break
		}
		lp := &plan.layers[li]
		for _, g := range lp.oneQ {
			// Remaps of validated gates onto in-range layout positions:
			// appended directly, skipping Circuit.Append's re-validation.
			mapped := g
			mapped.Q0 = layout.Phys(g.Q0)
			out.Gates = append(out.Gates, mapped)
		}
		layerSwaps, err := r.routeLayer(ctx, li, lp, layout, out, sc, dist, tab, swapCap-swaps)
		swaps += layerSwaps
		if err != nil {
			rerr = err
			break
		}
	}

	// Batched per call, on every exit: the counters measure routing work
	// performed — every stochastic trial counts, pruned and failed attempts
	// included (with the pruning cap fixed before the fan-out, a pruned
	// trial's partial work is as deterministic as a completed one's) —
	// while compile/swaps counts only the SWAPs of the kept result.
	if r.Obs.Enabled() {
		r.Obs.Inc(obsv.CntRouterRoutes)
		r.Obs.Add(obsv.CntRouterLayers, int64(len(plan.layers)))
		r.Obs.Add(obsv.CntRouterSwaps, int64(swaps))
		r.Obs.Add(obsv.CntRouterScoreEvals, sc.evals)
		r.Obs.Add(obsv.CntCompileDistUpdates, sc.updates)
	}
	if rerr != nil {
		putLayout(layout)
		putCircuit(out)
		return nil, rerr
	}
	return &Result{Circuit: out, Initial: initial, Final: layout, SwapCount: swaps}, nil
}

// routeLayer emits the layer's two-qubit gates, inserting SWAPs as needed,
// and returns the number of SWAPs added — pruning the attempt with
// errTrialPruned once they exceed budget (the caller's remaining swap
// allowance). The layout is updated in place; sc carries the incremental
// scoring state (and its work counters) across the layer.
func (r *Router) routeLayer(ctx context.Context, li int, lp *layerPlan, layout *Layout, out *circuit.Circuit, sc *scorer, dist *graphs.DistanceMatrix, tab *devTables, budget int) (int, error) {
	if len(lp.twoQ) == 0 {
		return 0, nil
	}
	if budget < noSwapCap {
		// Capped trial: a gate at hop distance h needs at least h-1 SWAPs
		// (one SWAP moves an endpoint one hop), whichever distance metric
		// guides selection. If the worst pending gate alone already
		// overruns the remaining budget the trial can never finish within
		// the cap, so it would be pruned later anyway — abort before paying
		// for the layer. Guarded on finite hops: an unreachable pair is
		// trial-order-independent and must surface as trial 0's routing
		// error, not a silent prune.
		maxHop := 0.0
		for i := range lp.twoQ {
			g := &lp.twoQ[i]
			if h := tab.hop[layout.Phys(g.Q0)*tab.n+layout.Phys(g.Q1)]; h > maxHop {
				maxHop = h
			}
		}
		if !math.IsInf(maxHop, 1) && int(maxHop)-1 > budget {
			return 0, errTrialPruned
		}
	}
	// Swap-free fast path: when every pending gate already sits on a coupled
	// pair, the scorer's first emission sweep would emit them all in pending
	// order and terminate without ever scoring a swap — emit directly and
	// skip the per-layer scoring state entirely. The emitted sequence and
	// every work counter are identical to the scorer path (init evaluates
	// nothing; bestSwap never runs on such a layer).
	allAdj := true
	for i := range lp.twoQ {
		g := &lp.twoQ[i]
		if !tab.adj[layout.Phys(g.Q0)*tab.n+layout.Phys(g.Q1)] {
			allAdj = false
			break
		}
	}
	if allAdj {
		for i := range lp.twoQ {
			g := lp.twoQ[i]
			g.Q0, g.Q1 = layout.Phys(g.Q0), layout.Phys(g.Q1)
			out.Gates = append(out.Gates, g)
		}
		return 0, nil
	}
	scan := r.edgeOrder
	if scan == nil {
		scan = r.Dev.Coupling.Edges()
	}
	sc.init(tab, r.LookaheadWeight, scan, lp.twoQ, lp.next, layout)
	swaps := 0
	for {
		if err := ctx.Err(); err != nil {
			return swaps, fmt.Errorf("router: %w", err)
		}
		if swaps > budget {
			return swaps, errTrialPruned
		}
		// Emit every gate that is currently executable.
		sc.emitReady(out)
		if sc.nPend == 0 {
			return swaps, nil
		}
		if budget < noSwapCap && swaps+tab.maxHop-1 > budget {
			// Mid-layer lower bound: finishing the layer needs at least
			// maxPendingHop-1 further SWAPs (one SWAP moves any gate at most
			// one hop closer), so a capped trial already past that point is
			// doomed — abort now instead of swapping up to the cap. Pruned
			// trials are discarded whole, so the winner is unchanged. Same
			// finite-hop guard as the layer-entry check; the entry scan only
			// runs once the cap is within the coupling diameter, where the
			// bound can actually fire.
			if h := sc.maxPendingHop(); !math.IsInf(h, 1) && swaps+int(h)-1 > budget {
				return swaps, errTrialPruned
			}
		}

		if p1, p2, gain, ok := sc.bestSwap(scan); ok {
			var before []int
			if r.Trace.Enabled() {
				before = append([]int(nil), layout.L2P...)
			}
			out.Append(circuit.NewSwap(p1, p2))
			layout.SwapPhysical(p1, p2)
			sc.applySwap(p1, p2)
			swaps++
			if r.Trace.Enabled() {
				r.Trace.Swap(trace.SwapInfo{
					P1: p1, P2: p2,
					Cost:         dist.Dist(p1, p2),
					Gain:         gain,
					RoutingLayer: li,
					Before:       before,
					After:        append([]int(nil), layout.L2P...),
				})
			}
			continue
		}

		// No strictly improving swap exists: walk the closest pending gate's
		// control along its (distance-matrix) shortest path until adjacent.
		forced, err := r.forcePath(li, sc, layout, out, dist)
		swaps += forced
		if err != nil {
			return swaps, err
		}
	}
}

// forcePath routes the closest pending gate directly: the occupant of the
// control's physical qubit is swapped along the shortest path toward the
// target until the pair is coupled. Returns the number of swaps emitted, or
// a *DisconnectedError when no path exists (severed coupling graph).
func (r *Router) forcePath(li int, sc *scorer, layout *Layout, out *circuit.Circuit, dist *graphs.DistanceMatrix) (int, error) {
	r.Obs.Inc(obsv.CntRouterForcedPaths)
	best := sc.closestPending()
	src, dst := int(sc.entries[best].p0), int(sc.entries[best].p1)
	path := dist.Path(src, dst)
	if path == nil {
		return 0, &DisconnectedError{Device: r.Dev.Name, A: src, B: dst}
	}
	swaps := 0
	for i := 0; i+2 < len(path); i++ {
		var before []int
		if r.Trace.Enabled() {
			before = append([]int(nil), layout.L2P...)
		}
		out.Append(circuit.NewSwap(path[i], path[i+1]))
		layout.SwapPhysical(path[i], path[i+1])
		sc.applySwap(path[i], path[i+1])
		swaps++
		if r.Trace.Enabled() {
			r.Trace.Swap(trace.SwapInfo{
				P1: path[i], P2: path[i+1],
				Cost:         dist.Dist(path[i], path[i+1]),
				Forced:       true,
				RoutingLayer: li,
				Before:       before,
				After:        append([]int(nil), layout.L2P...),
			})
		}
	}
	return swaps, nil
}

// swapped maps physical position p through the transposition (a b).
func swapped(p, a, b int) int {
	switch p {
	case a:
		return b
	case b:
		return a
	}
	return p
}
