package router

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// DisconnectedError reports that routing required moving a qubit between two
// physical qubits with no coupling path — the signature failure of a
// degraded device whose coupling graph has been severed.
type DisconnectedError struct {
	Device string
	A, B   int
}

func (e *DisconnectedError) Error() string {
	return fmt.Sprintf("router: physical qubits %d and %d disconnected on %s", e.A, e.B, e.Device)
}

// Router inserts SWAPs to make a logical circuit comply with a device's
// coupling constraints. It is the layer-partitioning heuristic backend the
// paper describes for conventional compilers (§III "SWAP Insertion"): the
// circuit is split into layers of concurrently executable gates and SWAPs
// are added before each layer until all of its two-qubit gates touch
// coupled pairs.
type Router struct {
	// Dev is the routing target.
	Dev *device.Device
	// Dist supplies inter-qubit distances for SWAP scoring and path
	// selection. IC uses hop distances; VIC passes reliability-weighted
	// distances so SWAP chains prefer reliable links. Defaults to the
	// device's hop distances.
	Dist *graphs.DistanceMatrix
	// LookaheadWeight blends the next layer's gate distances into the SWAP
	// score (0 disables lookahead; default 0.5).
	LookaheadWeight float64
	// Trials > 1 routes the circuit that many times with randomized
	// tie-breaking (a shuffled coupling-edge scan order, seeded by Rng) and
	// keeps the attempt with the fewest SWAPs — the stochastic-swap
	// strategy of conventional compilers. Trials ≤ 1 is single-shot
	// deterministic routing.
	Trials int
	// Rng seeds the trial shuffles; required when Trials > 1.
	Rng *rand.Rand
	// Obs, when non-nil, receives routing counters: router/routes,
	// router/layers, router/swaps, router/forced_paths and router/trials.
	// Counters are batched per routing call, so the per-gate hot loop never
	// touches the collector.
	Obs *obsv.Collector
	// Trace, when non-nil, receives one event per inserted SWAP carrying
	// the (before, after) layout and the distance the SWAP paid. With
	// Trials > 1 the stochastic attempts run untraced and the winning
	// attempt is re-routed once with tracing, so the stream tells the story
	// of the kept circuit only.
	Trace *trace.Tracer

	// edgeOrder overrides the coupling-edge scan order for tie-breaking
	// (nil: the device's canonical order).
	edgeOrder []graphs.Edge
}

// New returns a Router over dev using hop distances and default lookahead.
func New(dev *device.Device) *Router {
	return &Router{Dev: dev, Dist: dev.HopDistances(), LookaheadWeight: 0.5}
}

// Result is a routed circuit plus layout bookkeeping.
type Result struct {
	// Circuit is the hardware-compliant physical circuit (register size =
	// device qubits). Two-qubit gates act only on coupling edges.
	Circuit *circuit.Circuit
	// Initial and Final are the layouts before and after routing.
	Initial, Final *Layout
	// SwapCount is the number of SWAP gates inserted.
	SwapCount int
}

// Route compiles the logical circuit c onto the device starting from the
// given initial layout (TrivialLayout when nil). The input gate order is
// respected up to concurrency: gates are processed in ASAP layers. With
// Trials > 1 the best of several randomized-tie-break attempts is returned.
func (r *Router) Route(c *circuit.Circuit, initial *Layout) (*Result, error) {
	return r.RouteContext(context.Background(), c, initial)
}

// RouteContext is Route honoring a deadline/cancellation: the routing loop
// checks ctx between layers and between SWAP insertions and returns a
// ctx-wrapped error as soon as the context is done.
func (r *Router) RouteContext(ctx context.Context, c *circuit.Circuit, initial *Layout) (*Result, error) {
	if r.Trials > 1 {
		return r.routeTrials(ctx, c, initial)
	}
	return r.routeOnce(ctx, c, initial)
}

// routeTrials runs Trials randomized attempts and keeps the fewest-SWAP one.
func (r *Router) routeTrials(ctx context.Context, c *circuit.Circuit, initial *Layout) (*Result, error) {
	if r.Rng == nil {
		return nil, fmt.Errorf("router: Trials > 1 requires Rng")
	}
	r.Obs.Add(obsv.CntRouterTrials, int64(r.Trials))
	canonical := r.Dev.Coupling.Edges()
	var best *Result
	var bestOrder []graphs.Edge
	for trial := 0; trial < r.Trials; trial++ {
		attempt := *r
		attempt.Trials = 0
		attempt.Trace = nil // only the kept attempt is traced, below
		if trial > 0 {
			order := append([]graphs.Edge(nil), canonical...)
			r.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			attempt.edgeOrder = order
		}
		res, err := attempt.routeOnce(ctx, c, initial)
		if err != nil {
			return nil, err
		}
		if best == nil || res.SwapCount < best.SwapCount {
			best, bestOrder = res, attempt.edgeOrder
		}
	}
	if r.Trace.Enabled() {
		// Replay the winning attempt with tracing: routeOnce is
		// deterministic given the edge scan order, so the replayed result
		// is the one returned and the trace describes exactly it.
		attempt := *r
		attempt.Trials = 0
		attempt.edgeOrder = bestOrder
		return attempt.routeOnce(ctx, c, initial)
	}
	return best, nil
}

// routeOnce performs one deterministic routing pass.
func (r *Router) routeOnce(ctx context.Context, c *circuit.Circuit, initial *Layout) (*Result, error) {
	dev := r.Dev
	if c.NQubits > dev.NQubits() {
		return nil, fmt.Errorf("router: circuit needs %d qubits, device %s has %d", c.NQubits, dev.Name, dev.NQubits())
	}
	if initial == nil {
		initial = TrivialLayout(c.NQubits, dev.NQubits())
	}
	if initial.NLogical() != c.NQubits || initial.NPhysical() != dev.NQubits() {
		return nil, fmt.Errorf("router: layout shape (%d,%d) does not match circuit %d / device %d",
			initial.NLogical(), initial.NPhysical(), c.NQubits, dev.NQubits())
	}
	dist := r.Dist
	if dist == nil {
		dist = dev.HopDistances()
	}

	layout := initial.Clone()
	out := circuit.New(dev.NQubits())
	swaps := 0
	layers := c.Layers()

	for li, layer := range layers {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("router: %w", err)
		}
		// Pass through one-qubit gates immediately; collect two-qubit work.
		var pending []circuit.Gate
		for _, gi := range layer {
			g := c.Gates[gi]
			switch g.Arity() {
			case 1:
				mapped := g
				mapped.Q0 = layout.Phys(g.Q0)
				out.Append(mapped)
			case 2:
				pending = append(pending, g)
			}
		}
		// Next layer's two-qubit gates feed the lookahead score.
		var next []circuit.Gate
		if r.LookaheadWeight > 0 && li+1 < len(layers) {
			for _, gi := range layers[li+1] {
				if g := c.Gates[gi]; g.Arity() == 2 {
					next = append(next, g)
				}
			}
		}
		layerSwaps, err := r.routeLayer(ctx, li, pending, next, layout, out)
		if err != nil {
			return nil, err
		}
		swaps += layerSwaps
	}

	// Batched per call: the counters measure routing work performed (every
	// stochastic trial counts), while compile/swaps counts only the SWAPs of
	// the kept result.
	if r.Obs.Enabled() {
		r.Obs.Inc(obsv.CntRouterRoutes)
		r.Obs.Add(obsv.CntRouterLayers, int64(len(layers)))
		r.Obs.Add(obsv.CntRouterSwaps, int64(swaps))
	}
	return &Result{Circuit: out, Initial: initial, Final: layout, SwapCount: swaps}, nil
}

// routeLayer emits the pending two-qubit gates, inserting SWAPs as needed,
// and returns the number of SWAPs added. The layout is updated in place.
// li is the ASAP layer index, stamped into trace events.
func (r *Router) routeLayer(ctx context.Context, li int, pending, next []circuit.Gate, layout *Layout, out *circuit.Circuit) (int, error) {
	swaps := 0
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return swaps, fmt.Errorf("router: %w", err)
		}
		// Emit every gate that is currently executable.
		rest := pending[:0]
		for _, g := range pending {
			p0, p1 := layout.Phys(g.Q0), layout.Phys(g.Q1)
			if r.Dev.Connected(p0, p1) {
				mapped := g
				mapped.Q0, mapped.Q1 = p0, p1
				out.Append(mapped)
			} else {
				rest = append(rest, g)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}

		if p1, p2, gain, ok := r.bestSwap(pending, next, layout); ok {
			var before []int
			if r.Trace.Enabled() {
				before = append([]int(nil), layout.L2P...)
			}
			out.Append(circuit.NewSwap(p1, p2))
			layout.SwapPhysical(p1, p2)
			swaps++
			if r.Trace.Enabled() {
				r.Trace.Swap(trace.SwapInfo{
					P1: p1, P2: p2,
					Cost:         r.Dist.Dist(p1, p2),
					Gain:         gain,
					RoutingLayer: li,
					Before:       before,
					After:        append([]int(nil), layout.L2P...),
				})
			}
			continue
		}

		// No strictly improving swap exists: walk the closest pending gate's
		// control along its (distance-matrix) shortest path until adjacent.
		forced, err := r.forcePath(li, pending, layout, out)
		swaps += forced
		if err != nil {
			return swaps, err
		}
	}
	return swaps, nil
}

// bestSwap searches coupling edges adjacent to pending gates' qubits for
// the swap minimizing pending distance plus the lookahead term plus the
// swap's own execution cost (the edge's distance weight — uniform for hop
// routing, reliability-dependent for VIC, so unreliable links are avoided
// even when geometrically equivalent). A strict improvement of the pending
// term is required so routing always terminates. Deterministic: ties broken
// by coupling-edge order.
//
// Candidates are scored by delta-evaluation: only gates with an endpoint on
// one of the swapped physical qubits change distance, so each candidate
// costs O(gates touching the edge) instead of O(all pending gates).
//
// The third return is the winning swap's pending-distance improvement
// (positive; the trace's "gain").
func (r *Router) bestSwap(pending, next []circuit.Gate, layout *Layout) (int, int, float64, bool) {
	// Combined entry list: pending gates first, then lookahead gates;
	// indexed by physical endpoint for delta evaluation.
	type entry struct {
		p0, p1  int
		pending bool
	}
	entries := make([]entry, 0, len(pending)+len(next))
	for _, g := range pending {
		entries = append(entries, entry{layout.Phys(g.Q0), layout.Phys(g.Q1), true})
	}
	lookahead := r.LookaheadWeight
	if lookahead > 0 {
		for _, g := range next {
			entries = append(entries, entry{layout.Phys(g.Q0), layout.Phys(g.Q1), false})
		}
	}
	touch := make(map[int][]int, 2*len(entries))
	for i, e := range entries {
		touch[e.p0] = append(touch[e.p0], i)
		touch[e.p1] = append(touch[e.p1], i)
	}
	active := make(map[int]bool, 2*len(pending))
	for _, g := range pending {
		active[layout.Phys(g.Q0)] = true
		active[layout.Phys(g.Q1)] = true
	}

	bestTotal := 0.0
	bestGain := 0.0
	var bp1, bp2 int
	found := false
	mark := make([]int, len(entries)) // visit stamp per entry
	stamp := 0
	scan := r.edgeOrder
	if scan == nil {
		scan = r.Dev.Coupling.Edges()
	}
	for _, e := range scan {
		if !active[e.U] && !active[e.V] {
			continue
		}
		stamp++
		// Distance delta for gates touching either end of the swap; an
		// entry touching both ends is visited once (its distance is
		// unchanged anyway, both endpoints staying within {e.U, e.V}).
		pendingDelta, nextDelta := 0.0, 0.0
		for _, p := range [2]int{e.U, e.V} {
			for _, i := range touch[p] {
				if mark[i] == stamp {
					continue
				}
				mark[i] = stamp
				en := entries[i]
				before := r.Dist.Dist(en.p0, en.p1)
				after := r.Dist.Dist(swapped(en.p0, e.U, e.V), swapped(en.p1, e.U, e.V))
				if en.pending {
					pendingDelta += after - before
				} else {
					nextDelta += after - before
				}
			}
		}
		if !(pendingDelta < 0) {
			// Must strictly improve the current layer. The negated form
			// also rejects NaN deltas (∞−∞ on disconnected devices), which
			// would otherwise loop forever; forcePath then reports the
			// disconnection.
			continue
		}
		total := pendingDelta + r.Dist.Dist(e.U, e.V)
		if lookahead > 0 {
			total += lookahead * nextDelta
		}
		if !found || total < bestTotal {
			bestTotal = total
			bestGain = -pendingDelta
			bp1, bp2 = e.U, e.V
			found = true
		}
	}
	return bp1, bp2, bestGain, found
}

// swapped maps physical position p through the transposition (a b).
func swapped(p, a, b int) int {
	switch p {
	case a:
		return b
	case b:
		return a
	}
	return p
}

// forcePath routes the closest pending gate directly: the occupant of the
// control's physical qubit is swapped along the shortest path toward the
// target until the pair is coupled. Returns the number of swaps emitted, or
// a *DisconnectedError when no path exists (severed coupling graph).
func (r *Router) forcePath(li int, pending []circuit.Gate, layout *Layout, out *circuit.Circuit) (int, error) {
	r.Obs.Inc(obsv.CntRouterForcedPaths)
	best := 0
	bestD := r.Dist.Dist(layout.Phys(pending[0].Q0), layout.Phys(pending[0].Q1))
	for i := 1; i < len(pending); i++ {
		d := r.Dist.Dist(layout.Phys(pending[i].Q0), layout.Phys(pending[i].Q1))
		if d < bestD {
			best, bestD = i, d
		}
	}
	g := pending[best]
	src, dst := layout.Phys(g.Q0), layout.Phys(g.Q1)
	path := r.Dist.Path(src, dst)
	if path == nil {
		return 0, &DisconnectedError{Device: r.Dev.Name, A: src, B: dst}
	}
	swaps := 0
	for i := 0; i+2 < len(path); i++ {
		var before []int
		if r.Trace.Enabled() {
			before = append([]int(nil), layout.L2P...)
		}
		out.Append(circuit.NewSwap(path[i], path[i+1]))
		layout.SwapPhysical(path[i], path[i+1])
		swaps++
		if r.Trace.Enabled() {
			r.Trace.Swap(trace.SwapInfo{
				P1: path[i], P2: path[i+1],
				Cost:         r.Dist.Dist(path[i], path[i+1]),
				Forced:       true,
				RoutingLayer: li,
				Before:       before,
				After:        append([]int(nil), layout.L2P...),
			})
		}
	}
	return swaps, nil
}
