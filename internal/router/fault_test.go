package router

import (
	"context"
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
)

// disconnectedDevice has two components, so routing a gate across them is
// impossible.
func disconnectedDevice() *device.Device {
	g := graphs.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	return &device.Device{Name: "split4", Coupling: g}
}

func TestRouteDisconnectedTypedError(t *testing.T) {
	dev := disconnectedDevice()
	c := circuit.New(4)
	c.Append(circuit.NewCPhase(0, 2, 0.3)) // crosses the components
	_, err := New(dev).Route(c, TrivialLayout(4, 4))
	if err == nil {
		t.Fatal("routing across components succeeded")
	}
	var de *DisconnectedError
	if !errors.As(err, &de) {
		t.Fatalf("want *DisconnectedError, got %T: %v", err, err)
	}
	if de.Device != "split4" {
		t.Fatalf("error device = %q", de.Device)
	}
}

func TestRouteContextCancelled(t *testing.T) {
	dev := device.Tokyo20()
	c := circuit.New(20)
	for i := 0; i < 19; i++ {
		c.Append(circuit.NewCPhase(i, (i+7)%20, 0.3))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(dev).RouteContext(ctx, c, TrivialLayout(20, 20))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
