package router

import (
	"fmt"

	"repro/internal/device"
)

// OptimalSwaps computes the exact minimum number of SWAPs needed to execute
// every gate in gates — an unordered set of logical qubit pairs, execution
// being free once a pair sits on a coupling edge — starting from the given
// layout. It searches breadth-first over (layout, executed-set) states, so
// it is exponential and intentionally restricted to tiny instances; its
// role is to bound how far the heuristic router strays from optimal (the
// "reasoning engine" approach of §III, usable only at toy scale).
func OptimalSwaps(gates [][2]int, dev *device.Device, initial *Layout) (int, error) {
	const (
		maxPhysical = 8
		maxGates    = 12
		maxStates   = 2_000_000
	)
	if dev.NQubits() > maxPhysical {
		return 0, fmt.Errorf("router: optimal search limited to %d physical qubits, device has %d", maxPhysical, dev.NQubits())
	}
	if len(gates) > maxGates {
		return 0, fmt.Errorf("router: optimal search limited to %d gates, got %d", maxGates, len(gates))
	}
	if initial == nil {
		return 0, fmt.Errorf("router: optimal search needs an initial layout")
	}
	for _, g := range gates {
		if g[0] < 0 || g[0] >= initial.NLogical() || g[1] < 0 || g[1] >= initial.NLogical() || g[0] == g[1] {
			return 0, fmt.Errorf("router: invalid gate (%d,%d)", g[0], g[1])
		}
	}

	full := (1 << uint(len(gates))) - 1

	type state struct {
		key  string
		mask int
	}
	encode := func(l *Layout) string {
		b := make([]byte, len(l.L2P))
		for i, p := range l.L2P {
			b[i] = byte(p)
		}
		return string(b)
	}
	// closure executes every currently-adjacent gate (free).
	closure := func(l *Layout, mask int) int {
		for i, g := range gates {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if dev.Connected(l.Phys(g[0]), l.Phys(g[1])) {
				mask |= 1 << uint(i)
			}
		}
		return mask
	}

	start := initial.Clone()
	startMask := closure(start, 0)
	if startMask == full {
		return 0, nil
	}
	type node struct {
		layout *Layout
		mask   int
	}
	frontier := []node{{start, startMask}}
	visited := map[state]bool{{encode(start), startMask}: true}
	edges := dev.Coupling.Edges()

	for swaps := 1; ; swaps++ {
		var next []node
		for _, nd := range frontier {
			for _, e := range edges {
				l := nd.layout.Clone()
				l.SwapPhysical(e.U, e.V)
				mask := closure(l, nd.mask)
				if mask == full {
					return swaps, nil
				}
				st := state{encode(l), mask}
				if visited[st] {
					continue
				}
				visited[st] = true
				if len(visited) > maxStates {
					return 0, fmt.Errorf("router: optimal search exceeded %d states", maxStates)
				}
				next = append(next, node{l, mask})
			}
		}
		if len(next) == 0 {
			return 0, fmt.Errorf("router: optimal search exhausted without executing all gates (disconnected device?)")
		}
		frontier = next
	}
}
