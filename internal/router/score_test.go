package router

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

// TestDevTablesBitwiseSymmetric asserts the flattened distance and hop
// tables are bitwise symmetric. scoreEdge depends on this: its partner
// arithmetic always indexes the hoisted row of the *swap* endpoint
// (dist[v][other] in place of dist[other][v]), which is bit-identical to
// the reference accumulation only if D[a][b] and D[b][a] carry the same
// bits. Symmetric-weight Floyd–Warshall preserves exact symmetry, and this
// test pins that property for both metrics the router consumes.
func TestDevTablesBitwiseSymmetric(t *testing.T) {
	calibrated := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(5)), 0.02, 0.01)
	cases := []struct {
		name string
		tab  *devTables
	}{
		{"tokyo-hop", buildDevTables(device.Tokyo20(), device.Tokyo20().HopDistances())},
		{"melbourne-hop", buildDevTables(device.Melbourne15(), device.Melbourne15().HopDistances())},
		{"tokyo-reliability", buildDevTables(calibrated, calibrated.ReliabilityDistances())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.tab.n
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if math.Float64bits(tc.tab.dist[a*n+b]) != math.Float64bits(tc.tab.dist[b*n+a]) {
						t.Fatalf("dist[%d][%d] and dist[%d][%d] differ bitwise", a, b, b, a)
					}
					if math.Float64bits(tc.tab.hop[a*n+b]) != math.Float64bits(tc.tab.hop[b*n+a]) {
						t.Fatalf("hop[%d][%d] and hop[%d][%d] differ bitwise", a, b, b, a)
					}
				}
			}
		})
	}
}

// TestScoringKernelZeroAlloc pins the zero-alloc contract of the scoring
// kernel: once the pooled scratch is warm, a bestSwap search plus the
// incremental applySwap update allocate nothing. The measured body applies
// the winning swap twice (an involution restoring the scoring state) so
// every run sees identical state, and resets the emission dirty list the
// way emitReady would without emitting.
func TestScoringKernelZeroAlloc(t *testing.T) {
	dev := device.Tokyo20()
	dist := dev.HopDistances()
	tab := buildDevTables(dev, dist)
	scan := dev.Coupling.Edges()
	layout := TrivialLayout(16, dev.NQubits())

	// Distant pairs so the layer genuinely needs swaps; a near-reversed
	// pattern keeps several candidate edges live.
	var pending, next []circuit.Gate
	for q := 0; q < 8; q++ {
		pending = append(pending, circuit.NewCPhase(q, 15-q, 0.7))
		next = append(next, circuit.NewCPhase(q, (q+7)%16, 0.7))
	}

	sc := getScorer()
	defer putScorer(sc)
	sc.init(tab, 0.5, scan, pending, next, layout)

	if _, _, _, ok := sc.bestSwap(scan); !ok {
		t.Fatal("setup: no improving swap available")
	}
	body := func() {
		sc.dirty = sc.dirty[:0]
		a, b, _, ok := sc.bestSwap(scan)
		if !ok {
			return
		}
		sc.applySwap(a, b)
		sc.applySwap(a, b)
	}
	body() // warm the pooled scratch to its steady-state capacity
	body()
	if allocs := testing.AllocsPerRun(100, body); allocs != 0 {
		t.Errorf("scoring kernel allocated %v times per run, want 0", allocs)
	}
}
