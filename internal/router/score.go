package router

import (
	"math"
	"slices"
	"sync"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
)

// devTables flattens the device lookups the routing hot loops hit per
// candidate evaluation — the distance matrix and the coupling adjacency —
// into contiguous 1-D arrays indexed a*n+b. They are built once per
// RouteContext call and shared read-only by every stochastic trial, turning
// the map-backed Connected check and the [][]float64 double indirection
// into single bounds-checked loads. The stored values are bitwise copies of
// the source matrix, so scores computed through the table are identical to
// scores computed through graphs.DistanceMatrix.Dist.
type devTables struct {
	n      int
	dist   []float64 // dist[a*n+b] = DistanceMatrix.Dist(a, b)
	hop    []float64 // hop[a*n+b] = unweighted shortest-path length a→b
	adj    []bool    // adj[a*n+b] = coupling edge (a,b) exists
	maxHop int       // largest finite hop distance (the coupling diameter)
}

func buildDevTables(dev *device.Device, dist *graphs.DistanceMatrix) *devTables {
	n := dev.NQubits()
	t := &devTables{n: n, dist: make([]float64, n*n), hop: make([]float64, n*n), adj: make([]bool, n*n)}
	hop := dev.HopDistances()
	for a := 0; a < n; a++ {
		copy(t.dist[a*n:(a+1)*n], dist.D[a])
		copy(t.hop[a*n:(a+1)*n], hop.D[a])
	}
	for _, h := range t.hop {
		if !math.IsInf(h, 1) && int(h) > t.maxHop {
			t.maxHop = int(h)
		}
	}
	for _, e := range dev.Coupling.Edges() {
		t.adj[e.U*n+e.V] = true
		t.adj[e.V*n+e.U] = true
	}
	return t
}

// scoreEntry is one pending or lookahead gate in a layer's scoring state:
// its current physical endpoints, the cached distance between them, and the
// flags the hot loops branch on. The fields are packed so one delta
// evaluation touches a single cache line instead of five parallel slices.
type scoreEntry struct {
	p0, p1 int32
	pend   bool
	alive  bool
	mark   int32 // applySwap dedup stamp (an entry touching both swap ends)
	dcur   float64
}

// scorer is the incremental SWAP-scoring state of one routing layer. It
// holds the pending and lookahead gates as entries with their *current*
// physical endpoints, indexed by endpoint, and keeps that state up to date
// across SWAP insertions instead of rebuilding it per candidate search:
// a SWAP on (a,b) changes the endpoints — and therefore the distances — of
// exactly the entries touching a or b, so applySwap remaps those entries
// through the transposition and swaps the two endpoint indexes, leaving
// every other entry untouched. bestSwap then scores candidates by delta
// evaluation over the endpoint index alone, memoizing per-edge scores
// between swaps.
//
// The entry order is load-bearing: touch lists are built in entry order and
// only ever swapped wholesale or compacted, so surviving entries are always
// visited in their original relative order and the floating-point
// accumulation of score deltas matches a full per-call rebuild bit for bit.
// That is what keeps the incremental router byte-identical to the
// full-recompute implementation it replaced (asserted by
// TestScorerMatchesFullRecompute).
//
// All state lives in pooled flat slices (getScorer/putScorer): after the
// first few layers warm the pool, init, bestSwap, applySwap and the
// emission scan allocate nothing.
type scorer struct {
	tab       *devTables
	lookahead float64

	// Entries: pending gates first (in pending order), then the next
	// layer's lookahead gates. gates holds the original logical gate of
	// each entry for emission.
	entries []scoreEntry
	gates   []circuit.Gate
	nPend   int // alive pending entries
	pendLen int // pending prefix length: entries[:pendLen] are the pending ones

	// touchP[p] / touchN[p] list the alive pending / lookahead entries with
	// a current endpoint on physical p (emission compacts dead entries out
	// of touchP, preserving order; lookahead entries never die). Keeping the
	// two populations separate lets scoreEdge skip the lookahead walk
	// entirely for edges whose pending term disqualifies them — the common
	// case — without perturbing either floating-point sum: the pending and
	// lookahead deltas accumulate into separate sums whose per-sum entry
	// order is unchanged by the split. activeCnt[p] counts alive *pending*
	// endpoint occurrences on p (the candidate-edge filter). stamp drives
	// the per-applySwap dedup marks.
	touchP    [][]int32
	touchN    [][]int32
	activeCnt []int
	stamp     int32

	// dirty lists the entries whose endpoints the swaps since the last
	// emission scan remapped — the only entries whose readiness can have
	// changed, and therefore the only ones emitReady needs to revisit after
	// its first full scan of the layer (scanAll).
	dirty   []int32
	scanAll bool

	// Memoized per-candidate-edge scores, indexed by the position of the
	// edge in this layer's scan order: epend/enext hold the last computed
	// pending/lookahead distance deltas and etotal the derived selection
	// total. Entry changes invalidate exactly the edges incident (per
	// incident, the scan-position index by qubit) to the changed
	// endpoints, queueing them on dirtyEdges (queued deduplicates), so
	// bestSwap recomputes only what a SWAP or an emission actually
	// perturbed before selecting. The improving edges are additionally
	// kept in a compact candidate set (candList unordered, candPos its
	// per-edge position index or -1), so selection scans the handful of
	// genuine candidates rather than every coupling edge. Every activity
	// transition of a physical qubit passes through invalidate (emission
	// and applySwap both call it), so cached candidacy is never stale; a
	// recompute runs the same entry-order loop a full scan would, so a
	// cached score is bitwise equal to a freshly computed one and the
	// winning swap is unchanged.
	//
	// No per-layer state reset is proportional to the edge count: init
	// drains the queue and the candidate set (each O(size)), bumps epoch —
	// escan stamps against it deduplicate the next rebuild — and marks the
	// layer edgesStale, so the first search scores only the edges incident
	// to an active qubit and layers needing no swap pay nothing at all.
	epend      []float64
	etotal     []float64
	candList   []int32
	candPos    []int32
	queued     []bool
	escan      []int64
	epoch      int64
	incOff     []int32 // CSR row offsets: edges incident to p are incList[incOff[p]:incOff[p+1]]
	incList    []int32
	incOther   []int32       // incOther[k] = the far endpoint of edge incList[k]
	incCur     []int32       // CSR fill cursor scratch
	incScan    []graphs.Edge // the scan the incidence index was built for
	dirtyEdges []int32       // queued invalid edges; queued[ei] ⟺ on the queue
	edgesStale bool

	// Deterministic work counters, accumulated across the layers of one
	// routing call and batched into the collector by routePlanned:
	// evals counts per-entry score-delta evaluations (router/score_evals),
	// updates counts incremental endpoint remaps (compile/dist_updates).
	evals   int64
	updates int64
}

// scorerPool recycles scorers across routing calls and layers; parallel
// trials each draw their own.
var scorerPool = sync.Pool{New: func() any { return new(scorer) }}

func getScorer() *scorer  { return scorerPool.Get().(*scorer) }
func putScorer(s *scorer) { scorerPool.Put(s) }

// init loads one layer's pending and lookahead gates under the given
// layout. Pooled backing arrays are reused; only first use (or a larger
// device/layer than ever seen) allocates.
func (s *scorer) init(tab *devTables, lookahead float64, scan []graphs.Edge, pending, next []circuit.Gate, layout *Layout) {
	s.tab = tab
	s.lookahead = lookahead
	s.entries = s.entries[:0]
	s.gates = s.gates[:0]
	s.nPend = len(pending)
	s.pendLen = len(pending)
	s.stamp = 0

	nPhys := tab.n
	if cap(s.touchP) < nPhys {
		s.touchP = make([][]int32, nPhys)
		s.touchN = make([][]int32, nPhys)
	}
	s.touchP = s.touchP[:nPhys]
	s.touchN = s.touchN[:nPhys]
	for p := range s.touchP {
		s.touchP[p] = s.touchP[p][:0]
		s.touchN[p] = s.touchN[p][:0]
	}
	if cap(s.activeCnt) < nPhys {
		s.activeCnt = make([]int, nPhys)
	}
	s.activeCnt = s.activeCnt[:nPhys]
	for p := range s.activeCnt {
		s.activeCnt[p] = 0
	}

	// Retire the previous layer's queue and candidate set by walking their
	// members (their index arrays still match the previous scan length) —
	// O(members), not O(edges).
	for _, ei := range s.dirtyEdges {
		s.queued[ei] = false
	}
	s.dirtyEdges = s.dirtyEdges[:0]
	for _, ei := range s.candList {
		s.candPos[ei] = -1
	}
	s.candList = s.candList[:0]
	nEdge := len(scan)
	prevEdge := len(s.candPos)
	if cap(s.epend) < nEdge {
		s.epend = make([]float64, nEdge)
		s.etotal = make([]float64, nEdge)
		s.queued = make([]bool, nEdge)
		s.escan = make([]int64, nEdge)
		s.candPos = make([]int32, nEdge)
		prevEdge = 0
	}
	s.epend = s.epend[:nEdge]
	s.etotal = s.etotal[:nEdge]
	s.queued = s.queued[:nEdge]
	s.escan = s.escan[:nEdge]
	s.candPos = s.candPos[:nEdge]
	// Newly exposed candPos slots (fresh allocation or growth within
	// capacity) read as zero, which is a valid set position — stamp them
	// with the not-a-member sentinel. Zero is already correct for queued
	// (not queued) and escan (stamps before any epoch).
	for i := prevEdge; i < nEdge; i++ {
		s.candPos[i] = -1
	}
	// Leftover scores from the previous layer are fine: the first bestSwap
	// of the layer rebuilds the memo under the new epoch (edgesStale), and
	// layers needing no swap never pay for the rebuild at all. epoch only
	// ever grows, so stale escan stamps — including those of a pooled
	// scorer's earlier device — can never alias the current layer.
	s.epoch++
	s.edgesStale = true
	// The incident index depends only on the scan order, which is constant
	// across the layers of one routing pass — rebuild it only when the scan
	// actually changed (a pooled scorer moving to a different trial).
	if len(s.incScan) != nEdge || (nEdge > 0 && &s.incScan[0] != &scan[0]) {
		s.incScan = scan
		if cap(s.incOff) < nPhys+1 {
			s.incOff = make([]int32, nPhys+1)
			s.incCur = make([]int32, nPhys)
		}
		s.incOff = s.incOff[:nPhys+1]
		s.incCur = s.incCur[:nPhys]
		for p := range s.incOff {
			s.incOff[p] = 0
		}
		for _, e := range scan {
			s.incOff[e.U+1]++
			s.incOff[e.V+1]++
		}
		for p := 0; p < nPhys; p++ {
			s.incOff[p+1] += s.incOff[p]
		}
		if cap(s.incList) < 2*nEdge {
			s.incList = make([]int32, 2*nEdge)
			s.incOther = make([]int32, 2*nEdge)
		}
		s.incList = s.incList[:2*nEdge]
		s.incOther = s.incOther[:2*nEdge]
		copy(s.incCur, s.incOff[:nPhys])
		for ei, e := range scan {
			s.incList[s.incCur[e.U]] = int32(ei)
			s.incOther[s.incCur[e.U]] = int32(e.V)
			s.incCur[e.U]++
			s.incList[s.incCur[e.V]] = int32(ei)
			s.incOther[s.incCur[e.V]] = int32(e.U)
			s.incCur[e.V]++
		}
	}
	s.dirty = s.dirty[:0]
	s.scanAll = true

	for _, g := range pending {
		s.addEntry(layout.Phys(g.Q0), layout.Phys(g.Q1), true, g)
	}
	if lookahead > 0 {
		for _, g := range next {
			s.addEntry(layout.Phys(g.Q0), layout.Phys(g.Q1), false, g)
		}
	}
}

func (s *scorer) addEntry(a, b int, pend bool, g circuit.Gate) {
	i := len(s.entries)
	s.entries = append(s.entries, scoreEntry{
		p0: int32(a), p1: int32(b),
		pend: pend, alive: true,
		dcur: s.tab.dist[a*s.tab.n+b],
	})
	s.gates = append(s.gates, g)
	if pend {
		s.touchP[a] = append(s.touchP[a], int32(i))
		s.touchP[b] = append(s.touchP[b], int32(i))
		s.activeCnt[a]++
		s.activeCnt[b]++
	} else {
		s.touchN[a] = append(s.touchN[a], int32(i))
		s.touchN[b] = append(s.touchN[b], int32(i))
	}
}

// emitReady appends every alive pending gate whose current endpoints are
// coupled, mapped to its physical qubits, and retires its entry. The first
// call of a layer scans the pending prefix (lookahead entries never emit);
// afterwards only the pending entries the swaps since the last call
// remapped (the dirty list) can have changed readiness — unmoved endpoints
// were already checked — so the scan shrinks to them, visited in ascending
// entry order to keep the emission order of the full sequential scan. The
// gates land on out.Gates directly: they are remaps of already-validated
// gates onto layout positions, so re-validation through Circuit.Append
// would be pure overhead on the hottest emission path. (Not annotated
// //qaoa:hotpath: the output-circuit append legitimately grows its backing
// array.)
func (s *scorer) emitReady(out *circuit.Circuit) {
	if s.scanAll {
		s.scanAll = false
		for i := 0; i < s.pendLen; i++ {
			s.emitIfReady(i, out)
		}
		return
	}
	if len(s.dirty) == 0 {
		return
	}
	slices.Sort(s.dirty)
	for _, i := range s.dirty {
		// Duplicates are harmless: a just-emitted entry is dead and skipped.
		s.emitIfReady(int(i), out)
	}
	s.dirty = s.dirty[:0]
}

// emitIfReady emits entry i if it is an alive pending gate on coupled
// endpoints, retiring it and compacting it out of the touch lists.
func (s *scorer) emitIfReady(i int, out *circuit.Circuit) {
	e := &s.entries[i]
	if !e.alive || !e.pend {
		return
	}
	a, b := int(e.p0), int(e.p1)
	if !s.tab.adj[a*s.tab.n+b] {
		return
	}
	mapped := s.gates[i]
	mapped.Q0, mapped.Q1 = a, b
	out.Gates = append(out.Gates, mapped)
	e.alive = false
	s.nPend--
	s.activeCnt[a]--
	s.activeCnt[b]--
	s.removeTouch(a, i)
	s.removeTouch(b, i)
	s.invalidate(a)
	s.invalidate(b)
}

// removeTouch compacts entry i out of touchP[p], preserving the relative
// order of the survivors (the order the delta sums accumulate in). Only
// pending entries are ever removed: emission is the only killer and it
// emits pending gates alone.
func (s *scorer) removeTouch(p, i int) {
	list := s.touchP[p]
	i32 := int32(i)
	for k, e := range list {
		if e == i32 {
			s.touchP[p] = append(list[:k], list[k+1:]...)
			return
		}
	}
}

// invalidate queues the edges incident to physical qubit p whose cached
// score can matter for recomputation; bestSwap drains the queue on its next
// call. The queued flag keeps the queue duplicate-free.
//
// An edge with no active endpoint can never *enter* the candidate set, so
// it only needs rescoring if it is currently *in* the set (to be removed).
// Skipping the rest leaves their memo stale, which is safe: a stale score
// is only ever consulted after a fresh scoreEdge, and the edge gets one
// before it can matter — every activity transition of an endpoint runs
// through invalidate again, at which point the filter passes.
//
//qaoa:hotpath
func (s *scorer) invalidate(p int) {
	ap := s.activeCnt[p] > 0
	for k := s.incOff[p]; k < s.incOff[p+1]; k++ {
		ei := s.incList[k]
		if !s.queued[ei] && (ap || s.candPos[ei] >= 0 || s.activeCnt[s.incOther[k]] > 0) {
			s.queued[ei] = true
			s.dirtyEdges = append(s.dirtyEdges, ei) //lint:allow hotpath: amortized high-water — capacity is bounded by the edge count and reached on the first pass
		}
	}
}

// bestSwap returns the swap minimizing pending distance plus the lookahead
// term plus the swap's own execution cost, requiring a strict improvement
// of the pending term so routing always terminates. Ties break by scan
// order. The call first refreshes the score memo — the edges incident to
// an active qubit on the first search of a layer, afterwards only the
// queued invalidations the state changes since the last call perturbed —
// then selects over the compact candidate set alone.
//
// Selection over the unordered candidate set picks the lowest total and,
// on equal totals, the lowest scan index — exactly the edge a sequential
// scan keeping the first strict minimum would pick, so the winner is
// independent of the set's internal order.
//
// The third return is the winning swap's pending-distance improvement
// (positive; the trace's "gain").
//
//qaoa:hotpath
func (s *scorer) bestSwap(scan []graphs.Edge) (int, int, float64, bool) {
	if s.edgesStale {
		// Fresh layer: score the edges that can matter — only an edge with
		// an active endpoint can be a candidate, so walk the active qubits'
		// incidence lists (escan stamps deduplicate shared edges). Unscored
		// edges are simply absent from the candidate set; any later
		// activation of an endpoint passes through invalidate, which queues
		// them for a real scoring. Pre-rebuild queue entries (from the
		// layer's first emission sweep) are subsumed by the rebuild.
		s.edgesStale = false
		for _, ei := range s.dirtyEdges {
			s.queued[ei] = false
		}
		s.dirtyEdges = s.dirtyEdges[:0]
		epoch := s.epoch
		escan := s.escan
		for p, cnt := range s.activeCnt {
			if cnt == 0 {
				continue
			}
			for k := s.incOff[p]; k < s.incOff[p+1]; k++ {
				ei := s.incList[k]
				if escan[ei] != epoch {
					escan[ei] = epoch
					e := scan[ei]
					s.scoreEdge(int(ei), e.U, e.V)
				}
			}
		}
	} else if len(s.dirtyEdges) > 0 {
		dirty := s.dirtyEdges
		queued := s.queued
		for _, ei := range dirty {
			queued[ei] = false
			e := scan[ei]
			s.scoreEdge(int(ei), e.U, e.V)
		}
		s.dirtyEdges = dirty[:0]
	}
	if len(s.candList) == 0 {
		return 0, 0, 0, false
	}
	etotal := s.etotal
	bi := int(s.candList[0])
	best := etotal[bi]
	for _, c := range s.candList[1:] {
		ei := int(c)
		t := etotal[ei]
		if t < best || (t == best && ei < bi) {
			best, bi = t, ei
		}
	}
	e := scan[bi]
	return e.U, e.V, -s.epend[bi], true
}

// scoreEdge recomputes the memoized score of candidate edge ei = (u, v)
// and adds or removes the edge from the candidate set accordingly.
//
// The score is the distance delta over entries touching exactly one end of
// the swap. An entry touching both ends keeps its distance (both endpoints
// stay within {u, v}), contributing an exact +0.0 the sum can skip
// bitwise-safely: deltas are never -0.0 (x−x is +0.0 in round-to-nearest),
// so no partial sum is -0.0 and adding +0.0 is the identity. The edge is a
// candidate only if the pending term strictly improves — the negated form
// of the test also rejects NaN deltas (∞−∞ on disconnected devices), which
// would otherwise loop forever; forcePath then reports the disconnection.
//
//qaoa:hotpath
func (s *scorer) scoreEdge(ei, u, v int) {
	cand := false
	if s.activeCnt[u] != 0 || s.activeCnt[v] != 0 {
		evals := s.evals
		dist, n := s.tab.dist, s.tab.n
		entries := s.entries
		// Row views of the distance matrix: an entry with partner `other`
		// on the swapped-away side lands on dist[v][other] (resp.
		// dist[u][other]). The matrix is bitwise symmetric (symmetric-weight
		// Floyd–Warshall preserves it exactly), so always indexing the
		// hoisted row is bit-identical to indexing in entry-slot order.
		distU := dist[u*n : u*n+n : u*n+n]
		distV := dist[v*n : v*n+n : v*n+n]
		pendingDelta := 0.0
		for _, i := range s.touchP[u] {
			en := &entries[i]
			other := int(en.p0) + int(en.p1) - u
			if other == v {
				continue
			}
			evals++
			pendingDelta += distV[other] - en.dcur
		}
		for _, i := range s.touchP[v] {
			en := &entries[i]
			other := int(en.p0) + int(en.p1) - v
			if other == u {
				continue
			}
			evals++
			pendingDelta += distU[other] - en.dcur
		}
		s.epend[ei] = pendingDelta
		if pendingDelta < 0 {
			// Candidate: now — and only now — pay for the lookahead term.
			total := pendingDelta + distU[v]
			if s.lookahead > 0 {
				nextDelta := 0.0
				for _, i := range s.touchN[u] {
					en := &entries[i]
					other := int(en.p0) + int(en.p1) - u
					if other == v {
						continue
					}
					evals++
					nextDelta += distV[other] - en.dcur
				}
				for _, i := range s.touchN[v] {
					en := &entries[i]
					other := int(en.p0) + int(en.p1) - v
					if other == u {
						continue
					}
					evals++
					nextDelta += distU[other] - en.dcur
				}
				total += s.lookahead * nextDelta
			}
			s.etotal[ei] = total
			cand = true
		}
		s.evals = evals
	}
	if cand {
		if s.candPos[ei] < 0 {
			s.candPos[ei] = int32(len(s.candList))
			s.candList = append(s.candList, int32(ei)) //lint:allow hotpath: amortized high-water — capacity is bounded by the edge count and reached on the first pass
		}
	} else if p := s.candPos[ei]; p >= 0 {
		last := len(s.candList) - 1
		moved := s.candList[last]
		s.candList[p] = moved
		s.candPos[moved] = p
		s.candList = s.candList[:last]
		s.candPos[ei] = -1
	}
}

// applySwap updates the scoring state for a SWAP on physical (a, b): the
// entries touching a or b are remapped through the transposition, their
// cached distances refreshed, and the endpoint indexes for a and b
// exchange; no other entry changes. This is the incremental distance
// update — O(entries touching the edge) instead of a full
// O(pending+lookahead) rebuild.
//
//qaoa:hotpath
func (s *scorer) applySwap(a, b int) {
	s.stamp++
	stamp := s.stamp
	updates := s.updates
	dist, n := s.tab.dist, s.tab.n
	a32, b32 := int32(a), int32(b)
	for li := 0; li < 4; li++ {
		var list []int32
		pend := false
		switch li {
		case 0:
			list, pend = s.touchP[a], true
		case 1:
			list = s.touchN[a]
		case 2:
			list, pend = s.touchP[b], true
		case 3:
			list = s.touchN[b]
		}
		for _, i := range list {
			en := &s.entries[i]
			if en.mark == stamp {
				continue
			}
			en.mark = stamp
			if pend {
				// Only pending entries can become ready to emit; lookahead
				// entries stay off the dirty list.
				s.dirty = append(s.dirty, i) //lint:allow hotpath: amortized high-water — capacity is bounded by the entry count and reached on the first pass
			}
			// Every edge whose score includes this entry is incident to an
			// old or new endpoint. The endpoints in {a, b} — at least one
			// old one, and every new one beyond the old pair — are
			// invalidated wholesale below, so only the carried-over
			// endpoint (if any) needs per-entry invalidation.
			if o := en.p0; o != a32 && o != b32 {
				s.invalidate(int(o))
			} else if o := en.p1; o != a32 && o != b32 {
				s.invalidate(int(o))
			}
			e0, e1 := en.p0, en.p1
			switch e0 {
			case a32:
				e0 = b32
			case b32:
				e0 = a32
			}
			switch e1 {
			case a32:
				e1 = b32
			case b32:
				e1 = a32
			}
			en.p0, en.p1 = e0, e1
			en.dcur = dist[int(e0)*n+int(e1)]
			updates++
		}
	}
	s.updates = updates
	s.touchP[a], s.touchP[b] = s.touchP[b], s.touchP[a]
	s.touchN[a], s.touchN[b] = s.touchN[b], s.touchN[a]
	s.activeCnt[a], s.activeCnt[b] = s.activeCnt[b], s.activeCnt[a]
	s.invalidate(a)
	s.invalidate(b)
}

// maxPendingHop returns the largest hop distance between the current
// endpoints of the alive pending entries (0 when none remain) — the
// per-state input of routeLayer's lower-bound pruning.
//
//qaoa:hotpath
func (s *scorer) maxPendingHop() float64 {
	hop, n := s.tab.hop, s.tab.n
	m := 0.0
	for i := 0; i < s.pendLen; i++ {
		e := &s.entries[i]
		if !e.alive {
			continue
		}
		if h := hop[int(e.p0)*n+int(e.p1)]; h > m {
			m = h
		}
	}
	return m
}

// closestPending returns the entry index of the alive pending gate with
// the smallest current endpoint distance (first minimum in entry order —
// the forced-path target selection of the reference implementation), or
// -1 when none remain.
//
//qaoa:hotpath
func (s *scorer) closestPending() int {
	best := -1
	bestD := 0.0
	for i := 0; i < s.pendLen; i++ {
		e := &s.entries[i]
		if !e.alive {
			continue
		}
		if best == -1 || e.dcur < bestD {
			best, bestD = i, e.dcur
		}
	}
	return best
}
