package router

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/obsv"
)

// benchRoute routes the QAOA-flavor Tokyo workload and reports, alongside
// the wall-clock time, the deterministic work counters as per-op custom
// units. The RNG is re-seeded every iteration, so the counters are exactly
// the same each op: the CI compile-bench gate fails on any drift in them
// (>15%), while sec/op — noisy on shared 1-CPU runners — is only a loose
// backstop.
func benchRoute(b *testing.B, trials int) {
	dev := device.Tokyo20()
	rng := rand.New(rand.NewSource(3))
	circ := randomRoutingCircuit(16, 60, rng)
	col := obsv.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(dev)
		r.Obs = col
		if trials > 1 {
			r.Trials = trials
			r.Rng = rand.New(rand.NewSource(7))
		}
		if _, err := r.Route(circ, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(col.Counter(obsv.CntRouterSwaps))/n, "swaps/op")
	b.ReportMetric(float64(col.Counter(obsv.CntRouterScoreEvals))/n, "score-evals/op")
	b.ReportMetric(float64(col.Counter(obsv.CntCompileDistUpdates))/n, "dist-updates/op")
}

// BenchmarkRouteSingle measures one deterministic routing pass (the
// canonical scan order, no stochastic trials).
func BenchmarkRouteSingle(b *testing.B) { benchRoute(b, 1) }

// BenchmarkRouteTrials8 measures best-of-8 stochastic routing — the
// configuration the suite-level ≥3× compile-time target is stated at.
func BenchmarkRouteTrials8(b *testing.B) { benchRoute(b, 8) }
