package router

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
)

// This file preserves the pre-incremental router as a test oracle: per
// search it rebuilds the entry lists and recomputes every candidate score
// from the distance matrix, with no memoization, no candidate set and no
// incremental endpoint state. The incremental scorer must match it gate for
// gate, bit for bit — that equivalence is the correctness contract of the
// whole hot-path overhaul (see the scorer doc comment in score.go).

// refRoute is the reference single-shot routing pass (the routeOnce of the
// full-recompute implementation).
func refRoute(r *Router, c *circuit.Circuit, initial *Layout) (*Result, error) {
	dev := r.Dev
	if initial == nil {
		initial = TrivialLayout(c.NQubits, dev.NQubits())
	}
	layout := initial.Clone()
	out := circuit.New(dev.NQubits())
	swaps := 0
	layers := c.Layers()

	for li, layer := range layers {
		var pending []circuit.Gate
		for _, gi := range layer {
			g := c.Gates[gi]
			switch g.Arity() {
			case 1:
				mapped := g
				mapped.Q0 = layout.Phys(g.Q0)
				out.Append(mapped)
			case 2:
				pending = append(pending, g)
			}
		}
		var next []circuit.Gate
		if r.LookaheadWeight > 0 && li+1 < len(layers) {
			for _, gi := range layers[li+1] {
				if g := c.Gates[gi]; g.Arity() == 2 {
					next = append(next, g)
				}
			}
		}
		layerSwaps, err := refRouteLayer(r, pending, next, layout, out)
		swaps += layerSwaps
		if err != nil {
			return nil, err
		}
	}
	return &Result{Circuit: out, Initial: initial, Final: layout, SwapCount: swaps}, nil
}

// refRouteLayer emits the pending gates, inserting full-recompute-scored
// SWAPs (and forced paths) until the layer drains.
func refRouteLayer(r *Router, pending, next []circuit.Gate, layout *Layout, out *circuit.Circuit) (int, error) {
	swaps := 0
	for len(pending) > 0 {
		rest := pending[:0]
		for _, g := range pending {
			p0, p1 := layout.Phys(g.Q0), layout.Phys(g.Q1)
			if r.Dev.Connected(p0, p1) {
				mapped := g
				mapped.Q0, mapped.Q1 = p0, p1
				out.Append(mapped)
			} else {
				rest = append(rest, g)
			}
		}
		pending = rest
		if len(pending) == 0 {
			break
		}

		if p1, p2, _, ok := refBestSwap(r, pending, next, layout); ok {
			out.Append(circuit.NewSwap(p1, p2))
			layout.SwapPhysical(p1, p2)
			swaps++
			continue
		}

		forced, err := refForcePath(r, pending, layout, out)
		swaps += forced
		if err != nil {
			return swaps, err
		}
	}
	return swaps, nil
}

// refBestSwap recomputes every candidate edge's score from scratch: entry
// lists, endpoint index and active set are rebuilt per call, and each
// touched entry's distance delta is re-read from the distance matrix.
func refBestSwap(r *Router, pending, next []circuit.Gate, layout *Layout) (int, int, float64, bool) {
	type entry struct {
		p0, p1  int
		pending bool
	}
	entries := make([]entry, 0, len(pending)+len(next))
	for _, g := range pending {
		entries = append(entries, entry{layout.Phys(g.Q0), layout.Phys(g.Q1), true})
	}
	lookahead := r.LookaheadWeight
	if lookahead > 0 {
		for _, g := range next {
			entries = append(entries, entry{layout.Phys(g.Q0), layout.Phys(g.Q1), false})
		}
	}
	touch := make(map[int][]int, 2*len(entries))
	for i, e := range entries {
		touch[e.p0] = append(touch[e.p0], i)
		touch[e.p1] = append(touch[e.p1], i)
	}
	active := make(map[int]bool, 2*len(pending))
	for _, g := range pending {
		active[layout.Phys(g.Q0)] = true
		active[layout.Phys(g.Q1)] = true
	}

	bestTotal := 0.0
	bestGain := 0.0
	var bp1, bp2 int
	found := false
	mark := make([]int, len(entries))
	stamp := 0
	scan := r.edgeOrder
	if scan == nil {
		scan = r.Dev.Coupling.Edges()
	}
	for _, e := range scan {
		if !active[e.U] && !active[e.V] {
			continue
		}
		stamp++
		pendingDelta, nextDelta := 0.0, 0.0
		for _, p := range [2]int{e.U, e.V} {
			for _, i := range touch[p] {
				if mark[i] == stamp {
					continue
				}
				mark[i] = stamp
				en := entries[i]
				before := r.Dist.Dist(en.p0, en.p1)
				after := r.Dist.Dist(swapped(en.p0, e.U, e.V), swapped(en.p1, e.U, e.V))
				if en.pending {
					pendingDelta += after - before
				} else {
					nextDelta += after - before
				}
			}
		}
		if !(pendingDelta < 0) {
			continue
		}
		total := pendingDelta + r.Dist.Dist(e.U, e.V)
		if lookahead > 0 {
			total += lookahead * nextDelta
		}
		if !found || total < bestTotal {
			bestTotal = total
			bestGain = -pendingDelta
			bp1, bp2 = e.U, e.V
			found = true
		}
	}
	return bp1, bp2, bestGain, found
}

// refForcePath walks the closest pending gate along its shortest path, the
// no-improving-swap fallback of the reference implementation.
func refForcePath(r *Router, pending []circuit.Gate, layout *Layout, out *circuit.Circuit) (int, error) {
	best := 0
	bestD := r.Dist.Dist(layout.Phys(pending[0].Q0), layout.Phys(pending[0].Q1))
	for i := 1; i < len(pending); i++ {
		d := r.Dist.Dist(layout.Phys(pending[i].Q0), layout.Phys(pending[i].Q1))
		if d < bestD {
			best, bestD = i, d
		}
	}
	g := pending[best]
	src, dst := layout.Phys(g.Q0), layout.Phys(g.Q1)
	path := r.Dist.Path(src, dst)
	if path == nil {
		return 0, &DisconnectedError{Device: r.Dev.Name, A: src, B: dst}
	}
	swaps := 0
	for i := 0; i+2 < len(path); i++ {
		out.Append(circuit.NewSwap(path[i], path[i+1]))
		layout.SwapPhysical(path[i], path[i+1])
		swaps++
	}
	return swaps, nil
}

// randomRoutingCircuit builds a QAOA-flavor workload over n logical qubits:
// an H wall, `gates` random two-qubit CPhase gates with occasional RZ
// interleavings, and an RX mixer wall.
func randomRoutingCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for i := 0; i < gates; i++ {
		if rng.Intn(5) == 0 {
			c.Append(circuit.NewRZ(rng.Intn(n), 0.3))
			continue
		}
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		c.Append(circuit.NewCPhase(a, b, 0.7))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.NewRX(q, 0.4))
	}
	return c
}

// TestScorerMatchesFullRecompute asserts the incremental scorer's routing is
// byte-identical to the full-recompute reference across devices, distance
// metrics (hop and reliability-weighted), lookahead settings and shuffled
// edge scan orders — exact equality, not a tolerance: the incremental path
// is engineered to reproduce the reference's floating-point accumulation
// bit for bit.
func TestScorerMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tokyo := device.Tokyo20()
	melb := device.Melbourne15()
	relDev := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(5)), 0.02, 0.01)
	cases := []struct {
		name string
		dev  *device.Device
		dist *graphs.DistanceMatrix
	}{
		{"tokyo-hop", tokyo, tokyo.HopDistances()},
		{"melbourne-hop", melb, melb.HopDistances()},
		{"tokyo-reliability", relDev, relDev.ReliabilityDistances()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, lookahead := range []float64{0, 0.5} {
				for trial := 0; trial < 4; trial++ {
					circ := randomRoutingCircuit(tc.dev.NQubits()-4, 60, rng)
					r := &Router{Dev: tc.dev, Dist: tc.dist, LookaheadWeight: lookahead}
					if trial > 0 {
						order := append([]graphs.Edge(nil), tc.dev.Coupling.Edges()...)
						rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
						r.edgeOrder = order
					}
					got, err := r.Route(circ, nil)
					if err != nil {
						t.Fatalf("lookahead=%v trial=%d: route: %v", lookahead, trial, err)
					}
					want, err := refRoute(r, circ, nil)
					if err != nil {
						t.Fatalf("lookahead=%v trial=%d: reference route: %v", lookahead, trial, err)
					}
					if got.SwapCount != want.SwapCount {
						t.Fatalf("lookahead=%v trial=%d: SwapCount %d, reference %d", lookahead, trial, got.SwapCount, want.SwapCount)
					}
					if !reflect.DeepEqual(got.Circuit.Gates, want.Circuit.Gates) {
						t.Fatalf("lookahead=%v trial=%d: routed gates diverge from reference", lookahead, trial)
					}
					if !got.Final.Equal(want.Final) {
						t.Fatalf("lookahead=%v trial=%d: final layout %v, reference %v", lookahead, trial, got.Final, want.Final)
					}
				}
			}
		})
	}
}
