package router

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
)

func TestOptimalSwapsKnownCases(t *testing.T) {
	line := device.Linear(4)
	cases := []struct {
		name  string
		dev   *device.Device
		gates [][2]int
		want  int
	}{
		{"already adjacent", line, [][2]int{{0, 1}}, 0},
		{"distance 2 on line", line, [][2]int{{0, 2}}, 1},
		{"distance 3 on line", line, [][2]int{{0, 3}}, 2},
		{"two adjacent gates", line, [][2]int{{0, 1}, {2, 3}}, 0},
		{"no gates", line, nil, 0},
		{"ring shortcut", device.Ring(4), [][2]int{{0, 2}}, 1},
	}
	for _, tc := range cases {
		init := TrivialLayout(tc.dev.NQubits(), tc.dev.NQubits())
		got, err := OptimalSwaps(tc.gates, tc.dev, init)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: OptimalSwaps = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestOptimalSwapsSharedQubitPair(t *testing.T) {
	// On a line 0-1-2-3 with trivial layout, gates (0,3) and (1,2): (1,2)
	// executes free; one swap (e.g. 1↔2 region movement) progresses (0,3):
	// exact answer is 2 swaps for (0,3) alone, and (1,2) must execute
	// before its endpoints scatter — BFS finds the joint optimum.
	dev := device.Linear(4)
	init := TrivialLayout(4, 4)
	got, err := OptimalSwaps([][2]int{{0, 3}, {1, 2}}, dev, init)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("joint optimum = %d, want 2", got)
	}
}

func TestOptimalSwapsLimits(t *testing.T) {
	if _, err := OptimalSwaps(nil, device.Linear(9), TrivialLayout(9, 9)); err == nil {
		t.Error("oversized device accepted")
	}
	big := make([][2]int, 13)
	for i := range big {
		big[i] = [2]int{0, 1}
	}
	if _, err := OptimalSwaps(big, device.Linear(4), TrivialLayout(4, 4)); err == nil {
		t.Error("too many gates accepted")
	}
	if _, err := OptimalSwaps([][2]int{{0, 0}}, device.Linear(4), TrivialLayout(4, 4)); err == nil {
		t.Error("self-gate accepted")
	}
	if _, err := OptimalSwaps([][2]int{{0, 1}}, device.Linear(4), nil); err == nil {
		t.Error("nil layout accepted")
	}
}

// Property: the heuristic router never beats the exact optimum, and stays
// within a small additive factor of it on tiny instances.
func TestHeuristicNearOptimal(t *testing.T) {
	devices := []func() *device.Device{
		func() *device.Device { return device.Linear(5) },
		func() *device.Device { return device.Ring(6) },
		func() *device.Device { return device.Grid(2, 3) },
	}
	var worstGap int
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := devices[rng.Intn(len(devices))]()
		n := dev.NQubits()
		// A single layer of disjoint gates (matching OptimalSwaps's
		// unordered-set semantics).
		perm := rng.Perm(n)
		var gates [][2]int
		for i := 0; i+1 < len(perm) && len(gates) < 2; i += 2 {
			gates = append(gates, [2]int{perm[i], perm[i+1]})
		}
		init := TrivialLayout(n, n)
		opt, err := OptimalSwaps(gates, dev, init)
		if err != nil {
			return false
		}
		c := circuit.New(n)
		for _, g := range gates {
			c.Append(circuit.NewCPhase(g[0], g[1], 0.5))
		}
		res, err := New(dev).Route(c, init.Clone())
		if err != nil {
			return false
		}
		if res.SwapCount < opt {
			t.Errorf("heuristic %d swaps beat optimum %d (seed %d)", res.SwapCount, opt, seed)
			return false
		}
		if gap := res.SwapCount - opt; gap > worstGap {
			worstGap = gap
		}
		return res.SwapCount <= opt+3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	t.Logf("worst heuristic-vs-optimal gap: %d swaps", worstGap)
}
