package router

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/sim"
)

// verifySemantics checks that the routed physical circuit implements the
// logical circuit: simulating both, the physical amplitudes must equal the
// logical amplitudes re-indexed through the final layout (global phase is
// exact here because SWAP insertion adds no phases), with unmapped physical
// qubits left in |0⟩.
func verifySemantics(t *testing.T, logical *circuit.Circuit, res *Result) {
	t.Helper()
	psi := sim.NewState(logical.NQubits).Run(logical)
	phi := sim.NewState(res.Circuit.NQubits).Run(res.Circuit)

	// Mask of physical qubits that hold logical qubits at the end.
	usedMask := uint64(0)
	for q := 0; q < logical.NQubits; q++ {
		usedMask |= 1 << uint(res.Final.Phys(q))
	}
	for y := range phi.Amp {
		want := complex(0, 0)
		if uint64(y)&^usedMask == 0 {
			x := uint64(0)
			for q := 0; q < logical.NQubits; q++ {
				if uint64(y)&(1<<uint(res.Final.Phys(q))) != 0 {
					x |= 1 << uint(q)
				}
			}
			want = psi.Amp[x]
		}
		if cmplx.Abs(phi.Amp[y]-want) > 1e-9 {
			t.Fatalf("physical amplitude %d = %v, want %v (initial %v, final %v)",
				y, phi.Amp[y], want, res.Initial, res.Final)
		}
	}
}

func TestRouteCompliantCircuitUnchanged(t *testing.T) {
	dev := device.Linear(4)
	c := circuit.New(4).Append(
		circuit.NewH(0),
		circuit.NewCNOT(0, 1),
		circuit.NewCNOT(2, 3),
		circuit.NewCPhase(1, 2, 0.5),
	)
	res, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Errorf("swaps = %d, want 0", res.SwapCount)
	}
	if !res.Final.Equal(res.Initial) {
		t.Error("layout changed without swaps")
	}
	if res.Circuit.GateCount() != c.GateCount() {
		t.Errorf("gate count %d, want %d", res.Circuit.GateCount(), c.GateCount())
	}
	if err := dev.VerifyCompliant(res.Circuit); err != nil {
		t.Error(err)
	}
}

func TestRouteDistantCNOTOnLine(t *testing.T) {
	dev := device.Linear(4)
	c := circuit.New(4).Append(circuit.NewCNOT(0, 3))
	res, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount < 2 {
		t.Errorf("swaps = %d, want ≥ 2 for distance-3 pair", res.SwapCount)
	}
	if err := dev.VerifyCompliant(res.Circuit); err != nil {
		t.Error(err)
	}
	verifySemantics(t, c, res)
}

func TestRouteRespectsInitialLayout(t *testing.T) {
	dev := device.Linear(4)
	// Logical 0 on physical 3, logical 1 on physical 2: already adjacent.
	init, _ := NewLayout(2, 4, []int{3, 2})
	c := circuit.New(2).Append(circuit.NewCNOT(0, 1))
	res, err := New(dev).Route(c, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Errorf("swaps = %d, want 0", res.SwapCount)
	}
	g := res.Circuit.Gates[0]
	if g.Q0 != 3 || g.Q1 != 2 {
		t.Errorf("CNOT routed to (%d,%d), want (3,2)", g.Q0, g.Q1)
	}
}

func TestRouteSwapCountMatchesCircuit(t *testing.T) {
	dev := device.Ring(6)
	rng := rand.New(rand.NewSource(1))
	c := circuit.New(6)
	for i := 0; i < 10; i++ {
		a, b := rng.Intn(6), rng.Intn(6)
		if a == b {
			continue
		}
		c.Append(circuit.NewCPhase(a, b, 0.4))
	}
	res, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Circuit.CountKind(circuit.Swap); got != res.SwapCount {
		t.Errorf("SwapCount = %d but circuit has %d swap gates", res.SwapCount, got)
	}
}

func TestRouteErrors(t *testing.T) {
	dev := device.Linear(3)
	if _, err := New(dev).Route(circuit.New(4), nil); err == nil {
		t.Error("oversized circuit accepted")
	}
	badLayout, _ := NewLayout(2, 5, []int{0, 1})
	if _, err := New(dev).Route(circuit.New(2), badLayout); err == nil {
		t.Error("layout with wrong physical count accepted")
	}
}

func TestRouteDeterministic(t *testing.T) {
	dev := device.Grid(3, 3)
	rng := rand.New(rand.NewSource(2))
	c := circuit.New(9)
	for i := 0; i < 15; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.Append(circuit.NewCPhase(a, b, 0.3))
		}
	}
	r1, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Circuit.Len() != r2.Circuit.Len() || !r1.Final.Equal(r2.Final) {
		t.Error("routing is not deterministic")
	}
	for i := range r1.Circuit.Gates {
		if r1.Circuit.Gates[i] != r2.Circuit.Gates[i] {
			t.Fatal("routed gate sequences differ")
		}
	}
}

// Property: routing random circuits on random small devices preserves
// semantics and produces compliant circuits, from random initial layouts.
func TestRouteSemanticsProperty(t *testing.T) {
	devices := []func() *device.Device{
		func() *device.Device { return device.Linear(5) },
		func() *device.Device { return device.Ring(6) },
		func() *device.Device { return device.Grid(2, 3) },
		func() *device.Device { return device.Grid(3, 3) },
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := devices[rng.Intn(len(devices))]()
		n := 2 + rng.Intn(dev.NQubits()-1)
		c := circuit.New(n)
		for i := 0; i < 12; i++ {
			switch rng.Intn(4) {
			case 0:
				c.Append(circuit.NewH(rng.Intn(n)))
			case 1:
				c.Append(circuit.NewRZ(rng.Intn(n), rng.Float64()*math.Pi))
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				if rng.Intn(2) == 0 {
					c.Append(circuit.NewCNOT(a, b))
				} else {
					c.Append(circuit.NewCPhase(a, b, rng.Float64()*math.Pi))
				}
			}
		}
		perm := rng.Perm(dev.NQubits())[:n]
		init, err := NewLayout(n, dev.NQubits(), perm)
		if err != nil {
			return false
		}
		res, err := New(dev).Route(c, init)
		if err != nil {
			return false
		}
		if err := dev.VerifyCompliant(res.Circuit); err != nil {
			return false
		}
		verifySemantics(t, c, res)
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Routing with reliability-weighted distances must avoid a terrible link
// when a good detour exists.
func TestWeightedDistancesAvoidBadLink(t *testing.T) {
	// Square 0-1-2-3-0 plus: CNOT between 0 and 2 (distance 2 both ways).
	// Edge (1,2) is awful; the path through 3 must be preferred.
	dev := device.Ring(4)
	dev.Calib = &device.Calibration{CNOTError: map[[2]int]float64{
		{0, 1}: 0.01, {1, 2}: 0.45, {2, 3}: 0.01, {0, 3}: 0.01,
	}}
	r := &Router{Dev: dev, Dist: dev.ReliabilityDistances(), LookaheadWeight: 0}
	c := circuit.New(4).Append(circuit.NewCNOT(0, 2))
	res, err := r.Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.Gates {
		if g.Arity() == 2 {
			u, v := g.Q0, g.Q1
			if u > v {
				u, v = v, u
			}
			if u == 1 && v == 2 {
				t.Errorf("gate %v uses the unreliable link", g)
			}
		}
	}
	verifySemantics(t, c, res)
}

func TestMeasureGatesAreMapped(t *testing.T) {
	dev := device.Linear(3)
	init, _ := NewLayout(2, 3, []int{2, 0})
	c := circuit.New(2).Append(circuit.NewMeasure(0), circuit.NewMeasure(1))
	res, err := New(dev).Route(c, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.Gates[0].Q0 != 2 || res.Circuit.Gates[1].Q0 != 0 {
		t.Errorf("measures mapped to %d,%d; want 2,0",
			res.Circuit.Gates[0].Q0, res.Circuit.Gates[1].Q0)
	}
}

// Stochastic trials must never be worse than the deterministic single shot
// (the deterministic attempt is trial 0) and must stay semantically exact.
func TestRouteTrialsImproveOrMatch(t *testing.T) {
	dev := device.Grid(3, 3)
	rng := rand.New(rand.NewSource(31))
	c := circuit.New(9)
	for i := 0; i < 14; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.Append(circuit.NewCPhase(a, b, 0.4))
		}
	}
	single, err := New(dev).Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	multi := New(dev)
	multi.Trials = 8
	multi.Rng = rand.New(rand.NewSource(32))
	best, err := multi.Route(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.SwapCount > single.SwapCount {
		t.Errorf("trials result %d swaps worse than single shot %d", best.SwapCount, single.SwapCount)
	}
	if err := dev.VerifyCompliant(best.Circuit); err != nil {
		t.Error(err)
	}
	verifySemantics(t, c, best)
}

func TestRouteTrialsRequireRng(t *testing.T) {
	r := New(device.Linear(3))
	r.Trials = 4
	_, err := r.Route(circuit.New(3).Append(circuit.NewCNOT(0, 2)), nil)
	if !errors.Is(err, ErrTrialsWithoutRng) {
		t.Errorf("want ErrTrialsWithoutRng, got %v", err)
	}
}

// Routing across a disconnected device must fail with a typed error when a
// gate spans components (no silent wrong answer, and no panic crossing the
// API boundary).
func TestRouteDisconnectedDeviceErrors(t *testing.T) {
	dev := &device.Device{Name: "split", Coupling: splitGraph()}
	c := circuit.New(4).Append(circuit.NewCNOT(0, 3))
	_, err := New(dev).Route(c, nil)
	var de *DisconnectedError
	if !errors.As(err, &de) {
		t.Errorf("want *DisconnectedError, got %v", err)
	}
}

func splitGraph() *graphs.Graph {
	g := graphs.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	return g
}
