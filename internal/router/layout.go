// Package router implements the conventional backend compiler the paper's
// methodologies feed: it partitions a logical circuit into layers of
// concurrently executable gates and inserts SWAP operations until every
// two-qubit gate acts on a coupled physical pair, tracking the evolving
// logical-to-physical layout (the role played by IBM's qiskit transpiler in
// the paper's experiments).
package router

import (
	"fmt"
	"sync"

	"repro/internal/circuit"
)

// Layout is a bijective logical-to-physical qubit assignment. Physical
// qubits without a logical occupant map to -1.
type Layout struct {
	L2P []int // logical qubit -> physical qubit
	P2L []int // physical qubit -> logical qubit, -1 when free
}

// NewLayout builds a layout for nLogical qubits on nPhysical qubits from the
// logical→physical assignment l2p, validating that it is injective and in
// range.
func NewLayout(nLogical, nPhysical int, l2p []int) (*Layout, error) {
	if len(l2p) != nLogical {
		return nil, fmt.Errorf("router: assignment length %d, want %d", len(l2p), nLogical)
	}
	if nLogical > nPhysical {
		return nil, fmt.Errorf("router: %d logical qubits exceed %d physical", nLogical, nPhysical)
	}
	l := &Layout{
		L2P: append([]int(nil), l2p...),
		P2L: make([]int, nPhysical),
	}
	for p := range l.P2L {
		l.P2L[p] = -1
	}
	for q, p := range l.L2P {
		if p < 0 || p >= nPhysical {
			return nil, fmt.Errorf("router: logical %d mapped to out-of-range physical %d", q, p)
		}
		if l.P2L[p] != -1 {
			return nil, fmt.Errorf("router: physical %d assigned to both logical %d and %d", p, l.P2L[p], q)
		}
		l.P2L[p] = q
	}
	return l, nil
}

// TrivialLayout maps logical qubit i to physical qubit i.
func TrivialLayout(nLogical, nPhysical int) *Layout {
	l2p := make([]int, nLogical)
	for i := range l2p {
		l2p[i] = i
	}
	l, err := NewLayout(nLogical, nPhysical, l2p)
	if err != nil {
		panic(err) // impossible by construction
	}
	return l
}

// Clone returns an independent copy.
func (l *Layout) Clone() *Layout {
	return &Layout{
		L2P: append([]int(nil), l.L2P...),
		P2L: append([]int(nil), l.P2L...),
	}
}

// CloneInto copies l into dst, reusing dst's backing arrays when they are
// large enough, and returns dst.
func (l *Layout) CloneInto(dst *Layout) *Layout {
	dst.L2P = append(dst.L2P[:0], l.L2P...)
	dst.P2L = append(dst.P2L[:0], l.P2L...)
	return dst
}

// layoutPool recycles the working layouts of stochastic routing trials:
// every trial clones the initial layout, but only the winner's final
// layout escapes to the caller, so the losers' go back to the pool.
var layoutPool = sync.Pool{New: func() any { return new(Layout) }}

// getLayout returns a pooled clone of src.
func getLayout(src *Layout) *Layout {
	return src.CloneInto(layoutPool.Get().(*Layout))
}

// putLayout recycles a layout that no longer escapes.
func putLayout(l *Layout) { layoutPool.Put(l) }

// circuitPool recycles the routed-output circuits of stochastic routing
// trials, the one remaining per-trial allocation of any size: only the
// winning trial's circuit escapes to the caller, so the losers' gate
// buffers go back to the pool.
var circuitPool = sync.Pool{New: func() any { return new(circuit.Circuit) }}

// getCircuit returns a pooled empty circuit over n qubits whose gate
// buffer holds at least capHint gates before growing.
func getCircuit(n, capHint int) *circuit.Circuit {
	c := circuitPool.Get().(*circuit.Circuit)
	c.NQubits = n
	if cap(c.Gates) < capHint {
		c.Gates = make([]circuit.Gate, 0, capHint)
	} else {
		c.Gates = c.Gates[:0]
	}
	return c
}

// putCircuit recycles a circuit that no longer escapes.
func putCircuit(c *circuit.Circuit) { circuitPool.Put(c) }

// NLogical returns the number of logical qubits.
func (l *Layout) NLogical() int { return len(l.L2P) }

// NPhysical returns the number of physical qubits.
func (l *Layout) NPhysical() int { return len(l.P2L) }

// Phys returns the physical qubit holding logical q.
func (l *Layout) Phys(q int) int { return l.L2P[q] }

// LogicalAt returns the logical qubit on physical p, or -1.
func (l *Layout) LogicalAt(p int) int { return l.P2L[p] }

// SwapPhysical exchanges the logical occupants of physical qubits p1, p2
// (either may be free).
func (l *Layout) SwapPhysical(p1, p2 int) {
	q1, q2 := l.P2L[p1], l.P2L[p2]
	l.P2L[p1], l.P2L[p2] = q2, q1
	if q1 != -1 {
		l.L2P[q1] = p2
	}
	if q2 != -1 {
		l.L2P[q2] = p1
	}
}

// Equal reports whether two layouts assign identically.
func (l *Layout) Equal(o *Layout) bool {
	if len(l.L2P) != len(o.L2P) || len(l.P2L) != len(o.P2L) {
		return false
	}
	for i := range l.L2P {
		if l.L2P[i] != o.L2P[i] {
			return false
		}
	}
	return true
}

// String renders the logical→physical map.
func (l *Layout) String() string {
	s := "{"
	for q, p := range l.L2P {
		if q > 0 {
			s += " "
		}
		s += fmt.Sprintf("q%d→%d", q, p)
	}
	return s + "}"
}
