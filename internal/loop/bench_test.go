package loop

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/qaoa"
)

// The loop-level A/B pair the CI compile-bench job gates on: one hybrid
// evaluation with the legacy full-compile path versus the skeleton bind
// path. Each iteration builds a fresh evaluator seeded identically, so the
// reported work counters (compilations/op, binds/op) are deterministic —
// any growth is a real regression, not benchstat noise.

func benchProblem(b *testing.B) *qaoa.Problem {
	b.Helper()
	g := graphs.MustRandomRegular(10, 3, rand.New(rand.NewSource(31)))
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

const benchEvalsPerOp = 8

// benchEvaluations runs a fixed batch of evaluations per op — the shape of
// an optimizer's inner loop — and reports the deterministic compile-work
// counters.
func benchEvaluations(b *testing.B, prob *qaoa.Problem, perEval bool) {
	angles := make([]qaoa.Params, benchEvalsPerOp)
	for i := range angles {
		angles[i] = qaoa.Params{Gamma: []float64{0.1 * float64(i+1)}, Beta: []float64{0.07 * float64(i+1)}}
	}
	obs := obsv.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hw := &HardwareEvaluator{
			Prob: prob, Dev: device.Melbourne15(), Preset: compile.PresetIC,
			P: 1, Shots: 64, Trajectories: 2,
			Rng: rand.New(rand.NewSource(31)), Obs: obs,
			CompilePerEval: perEval,
		}
		for _, params := range angles {
			if _, err := hw.Expectation(params); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(obs.Counter(obsv.CntCompilations))/n, "compiles/op")
	b.ReportMetric(float64(obs.Counter(obsv.CntCompileBinds))/n, "binds/op")
}

func BenchmarkLoopCompilePerEval(b *testing.B) {
	benchEvaluations(b, benchProblem(b), true)
}

func BenchmarkLoopBindPerEval(b *testing.B) {
	benchEvaluations(b, benchProblem(b), false)
}
