// Package loop implements the quantum-classical hybrid optimization flow of
// QAOA (§II "QAOA Optimization Flow"): a classical optimizer iteratively
// updates the 2p circuit parameters to maximize the cost expectation, where
// each evaluation runs the parameterized circuit on a backend — either the
// noiseless state-vector simulator or the full compile-and-noisy-sample
// pipeline standing in for hardware.
package loop

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/optimize"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// Evaluator scores one parameter point — the "quantum" side of the loop.
type Evaluator interface {
	// Expectation returns ⟨C⟩ for the given angles.
	Expectation(params qaoa.Params) (float64, error)
	// Levels returns the number of QAOA levels the evaluator expects.
	Levels() int
}

// SimEvaluator evaluates exactly on the noiseless state-vector simulator.
type SimEvaluator struct {
	Prob *qaoa.Problem
	P    int
}

// Levels returns the configured level count.
func (e *SimEvaluator) Levels() int { return e.P }

// Expectation simulates the logical circuit and returns ⟨C⟩.
func (e *SimEvaluator) Expectation(params qaoa.Params) (float64, error) {
	return qaoa.Expectation(e.Prob, params)
}

// HardwareEvaluator evaluates by compiling for a device and sampling its
// noisy execution — the full in-the-loop flow the paper's §V-G runs on
// ibmq_16_melbourne, against our simulator substitute. Each evaluation is
// stochastic; use enough shots for stable gradients-free optimization.
//
// The circuit structure is angle-independent, so by default the evaluator
// compiles a routed skeleton once (on the first Expectation call) and
// binds each angle set into a reused buffer — the routing cost amortizes
// over the whole optimization instead of recurring per evaluation. Set
// CompilePerEval to recover the legacy full-compile-per-evaluation flow.
//
// A HardwareEvaluator is NOT goroutine-safe: Expectation mutates the
// evaluator's lazily-initialized state (rng, noise model, skeleton, bind
// buffer). Share work across goroutines with one evaluator per goroutine.
// Configuration fields are frozen by the first Expectation call.
type HardwareEvaluator struct {
	Prob         *qaoa.Problem
	Dev          *device.Device
	Preset       compile.Preset
	P            int
	Shots        int
	Trajectories int
	Noise        *sim.NoiseModel // nil: derive from the device calibration
	// Rng drives compilation tie-breaking and noisy sampling. nil is usable:
	// a deterministic stream is derived from the problem and device, in the
	// zero-value-friendly style of Shots/Trajectories.
	Rng *rand.Rand
	// Ctx, when non-nil, bounds every compilation of the evaluation loop.
	Ctx context.Context
	// Obs, when non-nil, times each evaluation (span loop/expectation),
	// counts them (loop/evaluations) and is forwarded to every compilation.
	Obs *obsv.Collector
	// CompilePerEval disables skeleton reuse: every Expectation call runs
	// the full mapping/ordering/routing pipeline on the concrete angles,
	// with the rng evolving across evaluations. This is the pre-skeleton
	// behavior, kept as the test oracle and for A/B benchmarking.
	CompilePerEval bool

	// Lazily-initialized evaluation state (see ensure).
	noise *sim.NoiseModel
	skel  *compile.Skeleton
	buf   compile.BindBuffer
}

// Levels returns the configured level count.
func (e *HardwareEvaluator) Levels() int { return e.P }

// defaultSeed derives a deterministic seed from the problem structure, the
// device and the level count, so two evaluators over the same instance
// reproduce each other without explicit seeding.
func (e *HardwareEvaluator) defaultSeed() int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|p=%d|", e.Dev.Name, e.P)
	if e.Prob != nil && e.Prob.G != nil {
		fmt.Fprintf(h, "n=%d;", e.Prob.G.N())
		for _, edge := range e.Prob.G.Edges() {
			fmt.Fprintf(h, "%d-%d;", edge.U, edge.V)
		}
	}
	return int64(h.Sum64())
}

// ensure hoists the lazy initialization out of the evaluation path: the
// default-seeded rng, the derived noise model, and (unless CompilePerEval)
// the one-time skeleton compile. It is idempotent and called by every
// Expectation, so a zero-value evaluator still works; calling it mutates
// the evaluator, which is why sharing one across goroutines is unsafe.
func (e *HardwareEvaluator) ensure() error {
	if e.Prob == nil || e.Dev == nil {
		return fmt.Errorf("loop: HardwareEvaluator needs Prob and Dev")
	}
	if e.Rng == nil {
		e.Rng = rand.New(rand.NewSource(e.defaultSeed()))
	}
	if e.noise == nil {
		e.noise = e.Noise
		if e.noise == nil {
			e.noise = sim.NoiseFromDevice(e.Dev)
		}
	}
	if e.skel == nil && !e.CompilePerEval {
		ps, err := compile.ParamSpecFromMaxCut(e.Prob, e.Levels())
		if err != nil {
			return err
		}
		copts := e.Preset.Options(e.Rng)
		copts.Obs = e.Obs
		skel, err := compile.CompileSkeleton(e.ctx(), ps, e.Dev, copts)
		if err != nil {
			return err
		}
		e.skel = skel
	}
	return nil
}

func (e *HardwareEvaluator) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background() //lint:allow ctxflow: a zero-value evaluator runs unbounded by design
}

// Expectation compiles (or binds the cached skeleton), noisily samples,
// and averages the cost.
func (e *HardwareEvaluator) Expectation(params qaoa.Params) (float64, error) {
	if err := e.ensure(); err != nil {
		return 0, err
	}
	span := e.Obs.StartSpan(obsv.SpanLoopExpectation)
	defer span.End()
	e.Obs.Inc(obsv.CntLoopEvaluations)
	var res *compile.Result
	var err error
	if e.CompilePerEval {
		copts := e.Preset.Options(e.Rng)
		copts.Obs = e.Obs
		res, err = compile.CompileContext(e.ctx(), e.Prob, params, e.Dev, copts)
	} else {
		res, err = e.skel.BindTo(&e.buf, params)
	}
	if err != nil {
		return 0, err
	}
	shots := e.Shots
	if shots <= 0 {
		shots = 1024
	}
	traj := e.Trajectories
	if traj <= 0 {
		traj = 16
	}
	samples := sim.SampleNoisy(res.Circuit, e.noise, shots, traj, e.Rng)
	// The evaluator is called once per optimizer step over the same problem,
	// so the dense cut table (cached on Prob) amortizes immediately and each
	// sample costs one lookup instead of an edge scan.
	tbl := e.Prob.CostTable()
	var sum float64
	for _, y := range samples {
		x := res.ExtractLogical(y)
		if tbl != nil && x < uint64(len(tbl)) {
			sum += tbl[x]
		} else {
			sum += e.Prob.Cost(x)
		}
	}
	return sum / float64(len(samples)), nil
}

// Result is the outcome of one hybrid optimization run.
type Result struct {
	Params      qaoa.Params
	Expectation float64
	Evaluations int
}

// Options tunes Run.
type Options struct {
	// Restarts is the number of independent starting points (default 3;
	// the first start uses the analytic p=1 optimum when available).
	Restarts int
	// MaxIter bounds each Nelder–Mead descent (default 200).
	MaxIter int
	// Rng seeds the random restarts (required).
	Rng *rand.Rand
}

// Run maximizes the evaluator's expectation over the 2p angles with
// multi-start Nelder–Mead (derivative-free, as appropriate for sampled
// objectives), returning the best parameters found.
func Run(ev Evaluator, prob *qaoa.Problem, opts Options) (Result, error) {
	return RunContext(context.Background(), ev, prob, opts)
}

// RunContext is Run honoring a deadline/cancellation: the context is
// checked between restarts and between objective evaluations, and the best
// result found so far is abandoned in favor of a ctx-wrapped error when the
// context finishes first.
func RunContext(ctx context.Context, ev Evaluator, prob *qaoa.Problem, opts Options) (Result, error) {
	p := ev.Levels()
	if p <= 0 {
		return Result{}, fmt.Errorf("loop: evaluator reports %d levels", p)
	}
	if opts.Rng == nil {
		return Result{}, fmt.Errorf("loop: Options.Rng required")
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}

	evals := 0
	objective := func(x []float64) float64 {
		if ctx.Err() != nil {
			return math.Inf(1) // poison the descent; the restart loop reports
		}
		evals++
		v, err := ev.Expectation(vecToParams(x, p))
		if err != nil {
			return math.Inf(1)
		}
		return -v
	}

	best := Result{Expectation: math.Inf(-1)}
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("loop: %w", err)
		}
		x0 := make([]float64, 2*p)
		if r == 0 && prob != nil {
			// Seed level angles from the analytic p=1 optimum.
			g0, b0, _, err := optimize.MaximizeP1(func(gm, bt float64) float64 {
				return qaoa.ExpectationP1Analytic(prob.G, gm, bt)
			}, 16)
			if err == nil {
				for l := 0; l < p; l++ {
					scale := float64(l+1) / float64(p)
					x0[l] = g0 * scale
					x0[p+l] = b0 * (1 - scale + 1/float64(2*p))
				}
			}
		} else {
			for i := 0; i < p; i++ {
				x0[i] = (opts.Rng.Float64() - 0.5) * 2 * math.Pi // gamma
				x0[p+i] = (opts.Rng.Float64() - 0.5) * math.Pi   // beta
			}
		}
		res, err := optimize.NelderMead(objective, x0, optimize.Options{MaxIter: maxIter, TolF: 1e-7})
		if err != nil {
			return Result{}, err
		}
		if v := -res.F; v > best.Expectation {
			best.Expectation = v
			best.Params = vecToParams(res.X, p)
		}
	}
	best.Evaluations = evals
	return best, nil
}

func vecToParams(x []float64, p int) qaoa.Params {
	params := qaoa.NewParams(p)
	copy(params.Gamma, x[:p])
	copy(params.Beta, x[p:2*p])
	return params
}
