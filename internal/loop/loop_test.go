package loop

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/optimize"
	"repro/internal/qaoa"
)

func triangleProblem(t *testing.T) *qaoa.Problem {
	t.Helper()
	g := graphs.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	p, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The p=1 loop on the exact simulator must recover (within tolerance) the
// analytic optimum.
func TestRunP1MatchesAnalytic(t *testing.T) {
	prob := triangleProblem(t)
	ev := &SimEvaluator{Prob: prob, P: 1}
	res, err := Run(ev, prob, Options{Rng: rand.New(rand.NewSource(1)), Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, _, want, err := optimize.MaximizeP1(func(gm, bt float64) float64 {
		return qaoa.ExpectationP1Analytic(prob.G, gm, bt)
	}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expectation < want-0.01 {
		t.Errorf("loop ⟨C⟩ = %v, analytic optimum %v", res.Expectation, want)
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
	if res.Params.P() != 1 {
		t.Errorf("params P = %d", res.Params.P())
	}
}

// A fundamental QAOA property: the p=2 optimum is at least the p=1 optimum
// (extra levels never hurt at the optimum), and strictly better on the
// 5-cycle, where p=1 cuts at most 3/4 of the edges (⟨C⟩ = 3.75 < Cmax = 4,
// the ring-of-disagrees bound).
func TestRunP2BeatsP1(t *testing.T) {
	g := graphs.New(5)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)
	}
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(&SimEvaluator{Prob: prob, P: 1}, prob,
		Options{Rng: rand.New(rand.NewSource(2)), Restarts: 3, MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Expectation-3.75) > 0.01 {
		t.Errorf("C5 p=1 optimum = %v, theory says 3.75 (¾ of 5 edges)", r1.Expectation)
	}
	r2, err := Run(&SimEvaluator{Prob: prob, P: 2}, prob,
		Options{Rng: rand.New(rand.NewSource(3)), Restarts: 6, MaxIter: 600})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Expectation < r1.Expectation-1e-6 {
		t.Errorf("p=2 optimum %v below p=1 %v", r2.Expectation, r1.Expectation)
	}
	if r2.Expectation < r1.Expectation+0.05 {
		t.Errorf("p=2 gave no improvement on C5: %v vs %v", r2.Expectation, r1.Expectation)
	}
}

func TestRunValidation(t *testing.T) {
	prob := triangleProblem(t)
	if _, err := Run(&SimEvaluator{Prob: prob, P: 0}, prob, Options{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := Run(&SimEvaluator{Prob: prob, P: 1}, prob, Options{}); err == nil {
		t.Error("missing rng accepted")
	}
}

// The hardware-in-the-loop evaluator must run end to end and report an
// expectation in the sane range, lower than the noiseless one at the same
// angles.
func TestHardwareEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graphs.MustRandomRegular(8, 3, rng)
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	gamma, beta, ideal, err := optimize.MaximizeP1(func(gm, bt float64) float64 {
		return qaoa.ExpectationP1Analytic(g, gm, bt)
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareEvaluator{
		Prob:   prob,
		Dev:    device.Melbourne15(),
		Preset: compile.PresetVIC,
		P:      1,
		Shots:  4096, Trajectories: 24,
		Rng: rand.New(rand.NewSource(5)),
	}
	params := qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
	noisy, err := hw.Expectation(params)
	if err != nil {
		t.Fatal(err)
	}
	if noisy <= 0 || noisy >= float64(g.M()) {
		t.Errorf("noisy ⟨C⟩ = %v outside (0, m)", noisy)
	}
	if noisy >= ideal {
		t.Errorf("noisy expectation %v not below ideal %v", noisy, ideal)
	}
	// Noise pulls toward the uniform mean m/2 but should not cross it by
	// much at melbourne error rates.
	if noisy < float64(g.M())/2-0.5 {
		t.Errorf("noisy expectation %v implausibly far below uniform %v", noisy, float64(g.M())/2)
	}
	if hw.Levels() != 1 {
		t.Error("Levels() wrong")
	}
}

func TestHardwareEvaluatorNeedsProbAndDev(t *testing.T) {
	hw := &HardwareEvaluator{P: 1}
	if _, err := hw.Expectation(qaoa.Params{Gamma: []float64{0.1}, Beta: []float64{0.1}}); err == nil {
		t.Error("missing problem/device accepted")
	}
}

// A nil Rng is usable: the evaluator derives a deterministic stream from the
// problem and device, so two zero-value evaluators agree exactly.
func TestHardwareEvaluatorNilRngDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graphs.MustRandomRegular(8, 3, rng)
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	params := qaoa.Params{Gamma: []float64{0.6}, Beta: []float64{0.25}}
	eval := func() float64 {
		hw := &HardwareEvaluator{
			Prob:   prob,
			Dev:    device.Melbourne15(),
			Preset: compile.PresetIC,
			P:      1,
			Shots:  512, Trajectories: 8,
		}
		v, err := hw.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		if hw.Rng == nil {
			t.Fatal("default rng not installed")
		}
		return v
	}
	if a, b := eval(), eval(); a != b {
		t.Errorf("nil-Rng evaluations differ: %v vs %v", a, b)
	}
}

// The context-honoring loop aborts with a wrapped ctx error.
func TestRunContextCancelled(t *testing.T) {
	prob := triangleProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, &SimEvaluator{Prob: prob, P: 1}, prob,
		Options{Rng: rand.New(rand.NewSource(1))})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestVecToParams(t *testing.T) {
	p := vecToParams([]float64{1, 2, 3, 4}, 2)
	if p.Gamma[0] != 1 || p.Gamma[1] != 2 || p.Beta[0] != 3 || p.Beta[1] != 4 {
		t.Errorf("vecToParams = %+v", p)
	}
}

// Optimizing through the noisy hardware evaluator end to end (small budget)
// must land at an expectation above the uniform baseline — the hybrid loop
// works even with sampling noise.
func TestRunHardwareLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy loop is slow")
	}
	rng := rand.New(rand.NewSource(6))
	g := graphs.MustRandomRegular(6, 3, rng)
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HardwareEvaluator{
		Prob:   prob,
		Dev:    device.Melbourne15(),
		Preset: compile.PresetIC,
		P:      1,
		Shots:  1024, Trajectories: 8,
		Rng: rand.New(rand.NewSource(7)),
	}
	res, err := Run(hw, prob, Options{Rng: rand.New(rand.NewSource(8)), Restarts: 2, MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	uniform := float64(g.M()) / 2
	if res.Expectation <= uniform {
		t.Errorf("hardware-loop optimum %v not above uniform %v", res.Expectation, uniform)
	}
}

func TestRunRespectsEvaluatorErrors(t *testing.T) {
	prob := triangleProblem(t)
	// An evaluator with an impossible level count inside params.
	ev := &erroringEvaluator{}
	res, err := Run(ev, prob, Options{Rng: rand.New(rand.NewSource(9)), Restarts: 1, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All evaluations failed → objective stuck at +Inf → expectation -Inf.
	if !math.IsInf(res.Expectation, -1) {
		t.Errorf("expected -Inf expectation when every evaluation errors, got %v", res.Expectation)
	}
}

type erroringEvaluator struct{}

func (e *erroringEvaluator) Levels() int { return 1 }
func (e *erroringEvaluator) Expectation(qaoa.Params) (float64, error) {
	return 0, errFake
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

// The skeleton path must reproduce the legacy compile-per-evaluation path
// exactly on the first evaluation: the skeleton compile consumes the rng
// exactly as a concrete compile would, and the bound circuit is
// byte-identical, so the first noisy sample stream coincides.
func TestHardwareEvaluatorBindMatchesCompilePerEvalFirstCall(t *testing.T) {
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(12)))
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	params := qaoa.Params{Gamma: []float64{0.8}, Beta: []float64{0.3}}
	make1 := func(perEval bool) *HardwareEvaluator {
		return &HardwareEvaluator{
			Prob: prob, Dev: device.Melbourne15(), Preset: compile.PresetIC,
			P: 1, Shots: 256, Trajectories: 4, CompilePerEval: perEval,
		}
	}
	bind, perEval := make1(false), make1(true)
	got, err := bind.Expectation(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := perEval.Expectation(params)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("first evaluation differs: bind %v, compile-per-eval %v", got, want)
	}
}

// Two zero-Rng skeleton-mode evaluators over the same instance must agree
// across a sequence of evaluations (the deterministic-stream contract).
func TestHardwareEvaluatorSkeletonDeterministic(t *testing.T) {
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(13)))
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	a := &HardwareEvaluator{Prob: prob, Dev: device.Melbourne15(), Preset: compile.PresetIC, P: 1, Shots: 128, Trajectories: 4}
	b := &HardwareEvaluator{Prob: prob, Dev: device.Melbourne15(), Preset: compile.PresetIC, P: 1, Shots: 128, Trajectories: 4}
	angles := []qaoa.Params{
		{Gamma: []float64{0.8}, Beta: []float64{0.3}},
		{Gamma: []float64{0.2}, Beta: []float64{0.9}},
		{Gamma: []float64{-1.1}, Beta: []float64{0.05}},
	}
	for i, params := range angles {
		va, err := a.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("evaluation %d: %v vs %v", i, va, vb)
		}
	}
}

// The whole point of the skeleton: a multi-evaluation loop pays for one
// pipeline run. compile/compilations counts the skeleton's sentinel
// compile only, and compile/binds counts every evaluation.
func TestHardwareEvaluatorCompilesOnceBindsPerEval(t *testing.T) {
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(14)))
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	obs := obsv.New()
	hw := &HardwareEvaluator{
		Prob: prob, Dev: device.Melbourne15(), Preset: compile.PresetIC,
		P: 1, Shots: 64, Trajectories: 2, Obs: obs,
	}
	const evals = 5
	for i := 0; i < evals; i++ {
		params := qaoa.Params{Gamma: []float64{0.1 * float64(i+1)}, Beta: []float64{0.05 * float64(i+1)}}
		if _, err := hw.Expectation(params); err != nil {
			t.Fatal(err)
		}
	}
	if got := obs.Counter(obsv.CntCompilations); got != 1 {
		t.Errorf("compile/compilations = %d, want 1 (the skeleton compile)", got)
	}
	if got := obs.Counter(obsv.CntSkeletonCompiles); got != 1 {
		t.Errorf("compile/skeleton_compiles = %d, want 1", got)
	}
	if got := obs.Counter(obsv.CntCompileBinds); got != int64(evals) {
		t.Errorf("compile/binds = %d, want %d", got, evals)
	}
	if got := obs.Counter(obsv.CntLoopEvaluations); got != int64(evals) {
		t.Errorf("loop/evaluations = %d, want %d", got, evals)
	}
}
