// TestMain wires the observability layer into `go test` / `go test -bench`
// runs: -metrics-out installs a process-wide collector before the run and
// writes the BENCH_*.json counter/span dump afterwards, so the figure
// benchmarks double as a metrics producer without a separate harness.
//
//	go test -run xxx -bench 'Fig(7|8|9)' -metrics-out BENCH_dev.json .
package repro

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/qaoac"
)

var (
	metricsOut = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the run to this path")
	metricsRev = flag.String("metrics-rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
)

func TestMain(m *testing.M) {
	flag.Parse()
	var col *qaoac.Collector
	if *metricsOut != "" {
		col = qaoac.NewCollector()
		qaoac.SetObservability(col)
		defer qaoac.SetObservability(nil)
	}
	code := m.Run()
	if *metricsOut != "" && code == 0 {
		rep := qaoac.NewBenchReport("go-test", qaoac.RevisionFromEnv(*metricsRev), col)
		if err := rep.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			code = 1
		}
	}
	os.Exit(code)
}
