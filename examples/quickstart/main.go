// Quickstart: compile a QAOA-MaxCut circuit for ibmq_20_tokyo with each of
// the paper's methodologies and compare the compiled-circuit quality.
package main

import (
	"fmt"
	"math/rand"

	"repro/qaoac"
)

func main() {
	// A 16-node 3-regular MaxCut problem — the sparse workload where
	// intelligent mapping pays off most.
	rng := rand.New(rand.NewSource(42))
	g := qaoac.MustRandomRegular(16, 3, rng)
	prob := &qaoac.Problem{G: g, MaxCut: 1} // optimum not needed for compilation

	dev := qaoac.Tokyo20()
	params := qaoac.P1Params(0.8, 0.35)

	fmt.Printf("compiling %d-node %d-edge QAOA-MaxCut for %s\n\n", g.N(), g.M(), dev.Name)
	fmt.Printf("%-8s  %8s  %8s  %8s  %12s\n", "method", "depth", "gates", "swaps", "compile")
	for _, preset := range []qaoac.Preset{
		qaoac.PresetNaive, qaoac.PresetGreedyV, qaoac.PresetQAIM,
		qaoac.PresetIP, qaoac.PresetIC,
	} {
		res, err := qaoac.Compile(prob, params, dev, preset.Options(rand.New(rand.NewSource(7))))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s  %8d  %8d  %8d  %12s\n",
			preset, res.Depth, res.GateCount, res.SwapCount, res.CompileTime.Round(10_000))
	}

	fmt.Println("\nIC typically wins on both depth and gate count: commuting CPhase")
	fmt.Println("gates are re-ordered so each routed layer needs fewer SWAPs.")
}
