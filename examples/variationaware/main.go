// Variation-aware compilation: compare IC and VIC on ibmq_16_melbourne
// with its published calibration snapshot. VIC routes around unreliable
// couplers, raising the compiled circuit's success probability and lowering
// the approximation-ratio gap under noise.
package main

import (
	"fmt"
	"math/rand"

	"repro/qaoac"
)

func main() {
	dev := qaoac.Melbourne15()
	fmt.Printf("device %s: %d qubits, CNOT error range on couplers:\n", dev.Name, dev.NQubits())
	lo, hi := 1.0, 0.0
	for _, e := range dev.Coupling.Edges() {
		if r := dev.CNOTError(e.U, e.V); r < lo {
			lo = r
		} else if r > hi {
			hi = r
		}
	}
	fmt.Printf("  best %.4f, worst %.4f — a %.1fx spread the compiler can exploit\n\n", lo, hi, hi/lo)

	nm := qaoac.NoiseFromDevice(dev)
	const shots, traj = 8192, 32

	fmt.Printf("%-6s %-6s  %10s  %10s  %8s  %8s\n", "inst", "method", "succ prob", "gates", "r0", "ARG %")
	for inst := 0; inst < 3; inst++ {
		rng := rand.New(rand.NewSource(int64(inst) * 101))
		g := qaoac.ErdosRenyi(12, 0.4, rng)
		prob, err := qaoac.NewMaxCut(g)
		if err != nil {
			panic(err)
		}
		gamma, beta, _, err := qaoac.OptimizeP1(g)
		if err != nil {
			panic(err)
		}
		for _, preset := range []qaoac.Preset{qaoac.PresetIC, qaoac.PresetVIC} {
			res, err := qaoac.Compile(prob, qaoac.P1Params(gamma, beta), dev,
				preset.Options(rand.New(rand.NewSource(int64(inst)))))
			if err != nil {
				panic(err)
			}
			sampleRNG := rand.New(rand.NewSource(int64(inst)*7 + 3))
			r0 := ratio(prob, res, qaoac.SampleIdeal(res.Circuit, shots, sampleRNG))
			rh := ratio(prob, res, qaoac.SampleNoisy(res.Circuit, nm, shots, traj, sampleRNG))
			fmt.Printf("%-6d %-6s  %10.6f  %10d  %8.4f  %8.2f\n",
				inst, preset, dev.SuccessProbability(res.Native), res.GateCount, r0, qaoac.ARG(r0, rh))
		}
	}
	fmt.Println("\nVIC trades a few extra SWAP hops for reliable links; its higher")
	fmt.Println("success probability shows up as a smaller approximation-ratio gap.")
}

func ratio(prob *qaoac.Problem, res *qaoac.CompileResult, physical []uint64) float64 {
	logical := make([]uint64, len(physical))
	for i, y := range physical {
		logical[i] = res.ExtractLogical(y)
	}
	r, err := qaoac.ApproximationRatio(prob, logical)
	if err != nil {
		panic(err)
	}
	return r
}
