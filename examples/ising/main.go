// Beyond MaxCut: solve a number-partitioning problem with QAOA through the
// same compilation pipeline (§VI "Applicability beyond QAOA-MaxCut").
// The weights {5,8,13,27,14,23} admit a perfect split (45 = 45); QAOA over
// the Ising form (Σ s_i·w_i)² should sample it with boosted probability.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qaoac"
)

func main() {
	weights := []float64{5, 8, 13, 27, 14, 23}
	m, offset := qaoac.IsingNumberPartition(weights)
	groundE, groundX, err := m.GroundState()
	if err != nil {
		panic(err)
	}
	fmt.Printf("weights %v, total %v\n", weights, sum(weights))
	fmt.Printf("exact ground state: %06b, imbalance² = %v (perfect split: 0)\n\n",
		groundX, offset+groundE)

	// Optimize (γ, β) on the simulator over the energy expectation. The
	// couplings span a wide magnitude range, so scan a small-γ window.
	dev := qaoac.Melbourne15()
	var bestG, bestB, bestE float64
	bestE = math.Inf(1)
	for ig := 1; ig <= 40; ig++ {
		for ib := 1; ib < 16; ib++ {
			gamma := float64(ig) * 0.0005
			beta := float64(ib) * math.Pi / 16
			e := isingExpectation(m, gamma, beta)
			if e < bestE {
				bestE, bestG, bestB = e, gamma, beta
			}
		}
	}
	fmt.Printf("optimized angles: γ = %.4f, β = %.4f, ⟨H⟩ = %.1f (random guess: 0 ⇒ ⟨H⟩ ≈ %.1f)\n",
		bestG, bestB, bestE, 0.0)

	// Compile for melbourne with IC and sample.
	res, err := qaoac.CompileIsing(m, qaoac.P1Params(bestG, bestB), dev,
		qaoac.PresetIC.Options(rand.New(rand.NewSource(3))))
	if err != nil {
		panic(err)
	}
	fmt.Printf("compiled: depth %d, gates %d, swaps %d\n\n", res.Depth, res.GateCount, res.SwapCount)

	rng := rand.New(rand.NewSource(4))
	samples := qaoac.SampleIdeal(res.Circuit, 4096, rng)
	hits := 0
	var meanE float64
	for _, y := range samples {
		x := res.ExtractLogical(y)
		e := m.Energy(x)
		meanE += e
		if offset+e == offset+groundE {
			hits++
		}
	}
	meanE /= float64(len(samples))
	fmt.Printf("sampled 4096 shots: mean ⟨H⟩ = %.1f, optimal partitions hit %d times (%.2f%%)\n",
		meanE, hits, 100*float64(hits)/4096)
	uniform := 100 * 4.0 / 64.0 // 2 optimal splits ×2 spin symmetry out of 2^6
	fmt.Printf("uniform sampling would hit ≈ %.2f%% — QAOA concentrates on good splits\n", uniform)
}

// isingExpectation evaluates ⟨H⟩ of the p=1 QAOA state by compiling for an
// ideal fully-connected device (no SWAPs) and simulating.
func isingExpectation(m *qaoac.IsingModel, gamma, beta float64) float64 {
	res, err := qaoac.CompileIsing(m, qaoac.P1Params(gamma, beta), qaoac.FullyConnectedDevice(m.N),
		qaoac.PresetQAIM.Options(rand.New(rand.NewSource(1))))
	if err != nil {
		panic(err)
	}
	s := qaoac.Simulate(res.Circuit)
	return s.ExpectationDiagonal(func(y uint64) float64 {
		return m.Energy(res.ExtractLogical(y))
	})
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
