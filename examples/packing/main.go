// Packing-density sweep: reproduce the Fig. 12 trade-off on the
// hypothetical 36-qubit grid — packing more CPhase gates per layer shrinks
// depth and compile time up to a point, while gate count creeps up.
package main

import (
	"fmt"
	"math/rand"

	"repro/qaoac"
)

func main() {
	dev := qaoac.GridDevice(6, 6)
	rng := rand.New(rand.NewSource(99))
	g := qaoac.ErdosRenyi(36, 0.5, rng)
	prob := &qaoac.Problem{G: g, MaxCut: 1}
	params := qaoac.P1Params(0.8, 0.35)

	fmt.Printf("IC on %d-qubit grid, G(36, 0.5) instance with %d edges\n\n", dev.NQubits(), g.M())
	fmt.Printf("%12s  %8s  %8s  %8s  %12s\n", "packing", "depth", "gates", "swaps", "compile")
	for _, limit := range []int{1, 2, 4, 6, 8, 10, 12, 15, 18} {
		opts := qaoac.PresetIC.Options(rand.New(rand.NewSource(5)))
		opts.PackingLimit = limit
		res, err := qaoac.Compile(prob, params, dev, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%12d  %8d  %8d  %8d  %12s\n",
			limit, res.Depth, res.GateCount, res.SwapCount, res.CompileTime.Round(10_000))
	}
	fmt.Println("\nLow limits serialize the circuit (deep, but each layer routes")
	fmt.Println("cheaply); generous limits parallelize it at some SWAP cost.")
}
