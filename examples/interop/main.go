// Interop: accept a QAOA circuit produced by another toolchain as OpenQASM,
// discover its commuting structure, compile it with the commutation-aware
// pipeline, and export the hardware-compliant result back to OpenQASM.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/qaoac"
)

// foreignQASM is a p=1 QAOA-MaxCut circuit for a 6-node ring as another
// toolchain might emit it: cost gates in an unhelpful serial order.
const foreignQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4]; h q[5];
rzz(-0.8) q[0],q[1];
rzz(-0.8) q[1],q[2];
rzz(-0.8) q[2],q[3];
rzz(-0.8) q[3],q[4];
rzz(-0.8) q[4],q[5];
rzz(-0.8) q[5],q[0];
rx(0.7) q[0]; rx(0.7) q[1]; rx(0.7) q[2]; rx(0.7) q[3]; rx(0.7) q[4]; rx(0.7) q[5];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
measure q[4] -> c[4];
measure q[5] -> c[5];
`

func main() {
	c, err := qaoac.ImportQASM(foreignQASM)
	if err != nil {
		panic(err)
	}
	fmt.Printf("imported: %d gates on %d qubits, naive depth %d\n", c.Len(), c.NQubits, c.Depth())

	// Commutation analysis: the serial rzz chain hides parallelism.
	fmt.Printf("commutation-aware depth bound: %d (the rzz gates commute)\n", qaoac.CommutationDepth(c))
	groups := qaoac.CommutingGroups(c)
	largest := 0
	for _, g := range groups {
		if len(g) > largest {
			largest = len(g)
		}
	}
	fmt.Printf("largest interchangeable gate group: %d gates\n\n", largest)

	// Compile for melbourne through IC: the pipeline re-orders the commuting
	// block and inserts SWAPs for the coupling constraints.
	dev := qaoac.Melbourne15()
	res, err := qaoac.CompileCircuit(c, dev, qaoac.PresetIC.Options(rand.New(rand.NewSource(1))))
	if err != nil {
		panic(err)
	}
	fmt.Printf("compiled for %s: depth %d, native gates %d, swaps %d\n",
		dev.Name, res.Depth, res.GateCount, res.SwapCount)
	fmt.Printf("readout map: %s\n\n", res.Final)

	out := qaoac.ExportQASM(res.Circuit)
	fmt.Printf("exported hardware-compliant OpenQASM (%d lines), first gates:\n", strings.Count(out, "\n"))
	for i, line := range strings.Split(out, "\n") {
		if i >= 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
}
