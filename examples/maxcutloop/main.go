// MaxCut optimization loop: the complete QAOA workflow on the simulator —
// sweep the (γ, β) landscape analytically, verify against state-vector
// simulation, then sample the optimized circuit and recover a MaxCut
// solution, exactly as the hybrid quantum-classical loop would on hardware.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qaoac"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	g := qaoac.ErdosRenyi(10, 0.45, rng)
	prob, err := qaoac.NewMaxCut(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("problem: G(10, 0.45) with %d edges, exact MaxCut = %d\n\n", g.M(), prob.MaxCut)

	// Coarse landscape scan (the analytic p=1 expectation is exact).
	fmt.Println("p=1 expectation landscape ⟨C⟩(γ, β) — analytic closed form:")
	fmt.Printf("%8s", "γ\\β")
	betas := []float64{-0.4, -0.2, 0.2, 0.4}
	for _, b := range betas {
		fmt.Printf("%8.2f", b)
	}
	fmt.Println()
	for _, gm := range []float64{0.2, 0.6, 1.0, 1.4} {
		fmt.Printf("%8.2f", gm)
		for _, b := range betas {
			fmt.Printf("%8.3f", qaoac.ExpectationP1Analytic(g, gm, b))
		}
		fmt.Println()
	}

	gamma, beta, expC, err := qaoac.OptimizeP1(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\noptimized: γ = %.4f, β = %.4f, ⟨C⟩ = %.4f (ratio %.4f)\n",
		gamma, beta, expC, expC/float64(prob.MaxCut))

	// Cross-check the analytic value against a state-vector simulation.
	c, err := qaoac.BuildCircuit(prob, qaoac.P1Params(gamma, beta), nil)
	if err != nil {
		panic(err)
	}
	simC := qaoac.Simulate(c).ExpectationDiagonal(prob.Cost)
	fmt.Printf("simulator cross-check: ⟨C⟩ = %.6f (|Δ| = %.1e)\n", simC, math.Abs(simC-expC))

	// Sample and decode the best cut, as the classical outer loop would.
	samples := qaoac.SampleIdeal(c, 4096, rng)
	bestCut, bestX := 0.0, uint64(0)
	for _, x := range samples {
		if v := prob.Cost(x); v > bestCut {
			bestCut, bestX = v, x
		}
	}
	r, err := qaoac.ApproximationRatio(prob, samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsampled 4096 shots: mean ratio %.4f, best cut %d/%d\n", r, int(bestCut), prob.MaxCut)
	fmt.Printf("best partition: ")
	for v := 0; v < g.N(); v++ {
		fmt.Printf("%d", (bestX>>uint(v))&1)
	}
	fmt.Println(" (vertex v on side bit v)")
}
