package qaoac

import "repro/internal/loop"

// The quantum-classical hybrid optimization loop (§II): a derivative-free
// classical optimizer drives a quantum evaluator — either the exact
// simulator or the full compile-and-noisy-sample pipeline.

// Evaluator scores one QAOA parameter point.
type Evaluator = loop.Evaluator

// SimEvaluator evaluates exactly on the noiseless simulator.
type SimEvaluator = loop.SimEvaluator

// HardwareEvaluator compiles for a device and samples its noisy execution —
// hardware-in-the-loop against the simulator substitute.
type HardwareEvaluator = loop.HardwareEvaluator

// LoopOptions tunes OptimizeLoop.
type LoopOptions = loop.Options

// LoopResult is the outcome of a hybrid optimization run.
type LoopResult = loop.Result

// OptimizeLoop maximizes the evaluator's expectation over the 2p angles with
// multi-start Nelder–Mead.
func OptimizeLoop(ev Evaluator, prob *Problem, opts LoopOptions) (LoopResult, error) {
	return loop.Run(ev, prob, opts)
}
