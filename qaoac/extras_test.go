package qaoac

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeQASMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := MustRandomRegular(6, 3, rng)
	res, err := Compile(&Problem{G: g, MaxCut: 1}, P1Params(0.5, 0.2), Melbourne15(), PresetIC.Options(rng))
	if err != nil {
		t.Fatal(err)
	}
	src := ExportQASM(res.Circuit)
	back, err := ImportQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Circuit.Len() {
		t.Errorf("round trip %d → %d gates", res.Circuit.Len(), back.Len())
	}
}

func TestFacadeCrosstalk(t *testing.T) {
	bell := NewCircuit(4).Append(
		NewCNOT(0, 1),
		NewCNOT(2, 3),
	)
	prone := NewPronePairs()
	prone.Add(0, 1, 2, 3)
	steps, depth := CrosstalkSchedule(bell, prone)
	if depth != 2 || steps[0] == steps[1] {
		t.Errorf("crosstalk schedule steps=%v depth=%d", steps, depth)
	}
	if CrosstalkDepth(bell, nil) != 1 {
		t.Error("no-prone depth should be 1")
	}
}

func TestFacadeDrawAndDurations(t *testing.T) {
	c := NewCircuit(2).Append(NewH(0), NewCNOT(0, 1))
	art := DrawCircuit(c)
	if !strings.Contains(art, "⊕") || !strings.Contains(art, "q1:") {
		t.Errorf("draw output:\n%s", art)
	}
	d := IBMDurations()
	if got := c.ExecutionTime(d); got != 350 {
		t.Errorf("execution time = %v, want 350", got)
	}
}

func TestFacadePeepholeAndOptimalSwaps(t *testing.T) {
	c := NewCircuit(2).Append(NewH(0), NewH(0))
	if got := Peephole(c); got.Len() != 0 {
		t.Errorf("peephole left %d gates", got.Len())
	}
	dev := LinearDevice(4)
	layout := TrivialLayout(4, 4)
	swaps, err := OptimalSwaps([][2]int{{0, 3}}, dev, layout)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 2 {
		t.Errorf("optimal swaps = %d, want 2", swaps)
	}
}

func TestFacadeDeviceJSON(t *testing.T) {
	data, err := json.Marshal(Melbourne15())
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeviceFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.NQubits() != 15 {
		t.Errorf("loaded %d qubits", d.NQubits())
	}
	if Falcon27().NQubits() != 27 {
		t.Error("Falcon27 missing")
	}
}

func TestFacadeIsing(t *testing.T) {
	m := NewIsing(3)
	if err := m.SetCoupling(0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if IsingSpin(0, 0) != 1 || IsingSpin(1, 0) != -1 {
		t.Error("spin convention broken")
	}
	g := NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	mc, offset := IsingMaxCut(g)
	if offset != 1 {
		t.Errorf("maxcut offset = %v", offset)
	}
	if cut := offset - mc.Energy(0b010); cut != 2 {
		t.Errorf("cut(010) = %v, want 2", cut)
	}
	np, off2 := IsingNumberPartition([]float64{1, 1})
	if off2 != 2 {
		t.Errorf("partition offset = %v", off2)
	}
	if e := np.Energy(0b01); e != -2 {
		t.Errorf("balanced partition energy = %v, want -2", e)
	}
	q, off3, err := IsingFromQUBO([][]float64{{1, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// f(x) = x0: f(0)=0, f(1)=1.
	if v := off3 + q.Energy(0); v != 0 {
		t.Errorf("QUBO f(0) = %v", v)
	}
	if v := off3 + q.Energy(1); v != 1 {
		t.Errorf("QUBO f(1) = %v", v)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := CompileIsing(mc, P1Params(0.4, 0.2), Melbourne15(), PresetVIC.Options(rng))
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth <= 0 {
		t.Error("degenerate ising compile")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	c := NewCircuit(4)
	for q := 0; q < 4; q++ {
		c.Append(NewH(q))
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}} {
		c.Append(NewCPhase(e[0], e[1], 0.5))
	}
	for q := 0; q < 4; q++ {
		c.Append(NewRX(q, 0.4))
	}
	if !Commute(NewCPhase(0, 1, 0.3), NewCPhase(1, 2, 0.7)) {
		t.Error("ZZ gates must commute")
	}
	if d := CommutationDepth(c); d >= c.Depth() {
		t.Errorf("commutation depth %d not below naive %d", d, c.Depth())
	}
	if groups := CommutingGroups(c); len(groups) == 0 {
		t.Error("no commuting groups found")
	}
	spec, _, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 4 || len(spec.Levels) != 1 {
		t.Errorf("spec shape %d/%d", spec.N, len(spec.Levels))
	}
	res, err := CompileCircuit(c, Tokyo20(), PresetIC.Options(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	if err := Tokyo20().VerifyCompliant(res.Circuit); err != nil {
		t.Error(err)
	}
}

func TestFacadeLoop(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeLoop(&SimEvaluator{Prob: prob, P: 1}, prob,
		LoopOptions{Rng: rand.New(rand.NewSource(4)), Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expectation < 1.0 {
		t.Errorf("loop expectation %v too low", res.Expectation)
	}
}

func TestFacadeExtConfigs(t *testing.T) {
	// Defaults must be sane and runnable at tiny scale.
	lv := DefaultExtLevels()
	lv.Instances, lv.Levels = 2, []int{1}
	if _, err := ExtLevels(context.Background(), lv); err != nil {
		t.Error(err)
	}
	dv := DefaultExtDevices()
	dv.Instances = 2
	if _, err := ExtDevices(context.Background(), dv); err != nil {
		t.Error(err)
	}
}

func TestFacadePauliExpectation(t *testing.T) {
	c := NewCircuit(2).Append(NewH(0), NewCNOT(0, 1))
	s := Simulate(c)
	v, err := s.ExpectationPauli("ZZ")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("Bell ⟨ZZ⟩ = %v", v)
	}
}
