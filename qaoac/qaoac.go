// Package qaoac is the public API of the QAOA circuit-compilation library —
// a from-scratch Go reproduction of "Circuit Compilation Methodologies for
// Quantum Approximate Optimization Algorithm" (Alam, Ash-Saki, Ghosh;
// MICRO 2020).
//
// The library compiles QAOA MaxCut circuits onto realistically-coupled
// quantum hardware using the paper's four methodologies:
//
//   - QAIM: integrated qubit allocation and initial mapping,
//   - IP:   instruction parallelization of the commuting CPhase gates,
//   - IC:   incremental, layout-aware layer-by-layer compilation,
//   - VIC:  variation-aware IC that prefers reliable couplings,
//
// together with the NAIVE and GreedyV baselines, a layered SWAP-insertion
// backend, device models (ibmq_20_tokyo, ibmq_16_melbourne, grids), a
// state-vector simulator with a stochastic noise model, and the full
// experiment harness that regenerates every table and figure of the paper's
// evaluation.
//
// Quick start:
//
//	g := qaoac.MustRandomRegular(12, 3, rand.New(rand.NewSource(1)))
//	prob, _ := qaoac.NewMaxCut(g)
//	dev := qaoac.Tokyo20()
//	res, _ := qaoac.Compile(prob, qaoac.P1Params(0.5, 0.2), dev,
//	    qaoac.PresetIC.Options(rand.New(rand.NewSource(2))))
//	fmt.Println(res.Depth, res.GateCount, res.SwapCount)
package qaoac

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/optimize"
	"repro/internal/qaoa"
	"repro/internal/router"
	"repro/internal/sim"
)

// indirections used by extras.go to keep that file import-light.
var (
	circuitPeephole     = circuit.Peephole
	routerOptimalSwaps  = router.OptimalSwaps
	circuitIBMDurations = circuit.IBMDurations
	deviceFromJSON      = device.FromJSON
)

type circuitDurations = circuit.Durations

// Problem graphs.

// Graph is a simple undirected graph (problem instance or coupling map).
type Graph = graphs.Graph

// Edge is an undirected graph edge.
type Edge = graphs.Edge

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graphs.New(n) }

// ErdosRenyi samples a G(n, p) random graph.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph { return graphs.ErdosRenyi(n, p, rng) }

// RandomRegular samples a uniform random d-regular graph.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) { return graphs.RandomRegular(n, d, rng) }

// MustRandomRegular is RandomRegular panicking on error.
func MustRandomRegular(n, d int, rng *rand.Rand) *Graph { return graphs.MustRandomRegular(n, d, rng) }

// MaxCutExact solves MaxCut exactly by exhaustive search (n ≤ 26).
func MaxCutExact(g *Graph) (int, uint64, error) { return graphs.MaxCutExact(g) }

// MaxCutAnneal approximates MaxCut by simulated annealing — the optimum
// estimate for instances beyond the exhaustive limit.
func MaxCutAnneal(g *Graph, sweeps int, rng *rand.Rand) (int, []bool) {
	return graphs.MaxCutAnneal(g, sweeps, rng)
}

// EdgeColoring returns a proper Δ+1 edge coloring (Misra–Gries/Vizing) —
// the optimal-layer-count scheduler for commuting cost blocks.
func EdgeColoring(g *Graph) ([]int, error) { return graphs.EdgeColoring(g) }

// WattsStrogatz samples a small-world workload graph.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*Graph, error) {
	return graphs.WattsStrogatz(n, k, beta, rng)
}

// BarabasiAlbert samples a scale-free (hub-heavy) workload graph.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	return graphs.BarabasiAlbert(n, m, rng)
}

// ParseEdgeList reads a problem graph from the "n <count>" + "u v [w]" text
// format; FormatEdgeList is its inverse.
func ParseEdgeList(src string) (*Graph, error) { return graphs.ParseEdgeList(src) }

// FormatEdgeList renders a graph in the ParseEdgeList text format.
func FormatEdgeList(g *Graph) string { return graphs.FormatEdgeList(g) }

// QAOA problems and circuits.

// Problem is a MaxCut instance with its exact optimum.
type Problem = qaoa.Problem

// Params are the 2p QAOA angles.
type Params = qaoa.Params

// NewMaxCut wraps a graph as a MaxCut problem (exact optimum computed).
func NewMaxCut(g *Graph) (*Problem, error) { return qaoa.NewMaxCut(g) }

// P1Params returns single-level parameters (γ, β).
func P1Params(gamma, beta float64) Params {
	return Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
}

// BuildCircuit constructs the logical QAOA state-preparation circuit.
func BuildCircuit(p *Problem, params Params, order []Edge) (*Circuit, error) {
	return qaoa.BuildCircuit(p, params, order)
}

// ExpectationP1Analytic is the closed-form p=1 MaxCut expectation ⟨C⟩(γ,β).
func ExpectationP1Analytic(g *Graph, gamma, beta float64) float64 {
	return qaoa.ExpectationP1Analytic(g, gamma, beta)
}

// ApproximationRatio is mean sampled cut over the optimum.
func ApproximationRatio(p *Problem, samples []uint64) (float64, error) {
	return qaoa.ApproximationRatio(p, samples)
}

// ARG is the approximation ratio gap 100·(r0−rh)/r0.
func ARG(r0, rh float64) float64 { return qaoa.ARG(r0, rh) }

// OptimizeP1 finds (γ, β) maximizing the analytic p=1 expectation for g.
func OptimizeP1(g *Graph) (gamma, beta, value float64, err error) {
	return optimize.MaximizeP1(func(gm, bt float64) float64 {
		return qaoa.ExpectationP1Analytic(g, gm, bt)
	}, 24)
}

// Circuits.

// Circuit is the gate-list IR.
type Circuit = circuit.Circuit

// Gate is a single circuit operation.
type Gate = circuit.Gate

// Layout is a logical-to-physical qubit assignment.
type Layout = router.Layout

// ErrTrialsWithoutRng reports stochastic routing trials requested without a
// seed source (router misuse; compare with errors.Is).
var ErrTrialsWithoutRng = router.ErrTrialsWithoutRng

// Devices.

// Device models target hardware (coupling graph + calibration).
type Device = device.Device

// Calibration holds device error rates.
type Calibration = device.Calibration

// Tokyo20 returns the 20-qubit ibmq_20_tokyo topology.
func Tokyo20() *Device { return device.Tokyo20() }

// Melbourne15 returns ibmq_16_melbourne with its calibration snapshot.
func Melbourne15() *Device { return device.Melbourne15() }

// GridDevice returns an r×c nearest-neighbour grid.
func GridDevice(r, c int) *Device { return device.Grid(r, c) }

// LinearDevice returns an n-qubit chain.
func LinearDevice(n int) *Device { return device.Linear(n) }

// RingDevice returns an n-qubit cycle.
func RingDevice(n int) *Device { return device.Ring(n) }

// FullyConnectedDevice returns an all-to-all coupled device — an ideal
// baseline requiring no SWAPs.
func FullyConnectedDevice(n int) *Device { return device.FullyConnected(n) }

// Falcon27 returns the 27-qubit heavy-hex topology of IBM's Falcon
// generation.
func Falcon27() *Device { return device.Falcon27() }

// Compilation.

// CompileResult is a compiled circuit with metrics.
type CompileResult = compile.Result

// CompileOptions configures a compilation run.
type CompileOptions = compile.Options

// Preset names the paper's evaluated configurations.
type Preset = compile.Preset

// The paper's compilation presets.
const (
	PresetNaive   = compile.PresetNaive
	PresetGreedyV = compile.PresetGreedyV
	PresetQAIM    = compile.PresetQAIM
	PresetIP      = compile.PresetIP
	PresetIC      = compile.PresetIC
	PresetVIC     = compile.PresetVIC
)

// Presets lists all presets in paper order.
var Presets = compile.Presets

// Compile lowers the QAOA circuit for prob onto dev with the configured
// methodology.
func Compile(prob *Problem, params Params, dev *Device, opts CompileOptions) (*CompileResult, error) {
	return compile.Compile(prob, params, dev, opts)
}

// QAIMMapping computes the paper's initial mapping for an arbitrary
// problem graph and device.
func QAIMMapping(g *Graph, dev *Device, radius int, rng *rand.Rand) (*Layout, error) {
	return compile.QAIMMapping(g, dev, radius, rng)
}

// IPOrder returns the instruction-parallelized CPhase gate order.
func IPOrder(g *Graph, rng *rand.Rand, packingLimit int) []Edge {
	return compile.IPOrder(g, rng, packingLimit)
}

// Simulation.

// State is a state-vector.
type State = sim.State

// NoiseModel is the stochastic Pauli + readout error model.
type NoiseModel = sim.NoiseModel

// Simulate runs the circuit from |0…0⟩ and returns the final state.
func Simulate(c *Circuit) *State { return sim.NewState(c.NQubits).Run(c) }

// SampleIdeal draws shots noiseless measurement samples from c.
func SampleIdeal(c *Circuit, shots int, rng *rand.Rand) []uint64 {
	return sim.NewState(c.NQubits).Run(c).Sample(rng, shots)
}

// SampleNoisy draws shots samples under the noise model, spread over the
// given number of Pauli-fault trajectories.
func SampleNoisy(c *Circuit, nm *NoiseModel, shots, trajectories int, rng *rand.Rand) []uint64 {
	return sim.SampleNoisy(c, nm, shots, trajectories, rng)
}

// NoiseFromDevice derives a noise model from a device calibration.
func NoiseFromDevice(d *Device) *NoiseModel { return sim.NoiseFromDevice(d) }

// SimExecutor caches one circuit's fused program and ideal final state so
// repeated ideal and noisy sampling of the same circuit share work (the
// fault-free trajectories of SampleNoisy reuse the ideal state directly).
type SimExecutor = sim.Executor

// NewSimExecutor fuses c into an executor; use it instead of the one-shot
// Simulate/SampleIdeal/SampleNoisy helpers when sampling a circuit more
// than once.
func NewSimExecutor(c *Circuit) *SimExecutor { return sim.NewExecutor(c) }

// Gate constructors (see package circuit for the full set).

// NewH returns a Hadamard on q.
func NewH(q int) Gate { return circuit.NewH(q) }

// NewX returns a Pauli-X on q.
func NewX(q int) Gate { return circuit.NewX(q) }

// NewRX returns an X rotation by theta on q.
func NewRX(q int, theta float64) Gate { return circuit.NewRX(q, theta) }

// NewRZ returns a Z rotation by theta on q.
func NewRZ(q int, theta float64) Gate { return circuit.NewRZ(q, theta) }

// NewCNOT returns a CNOT with control c and target t.
func NewCNOT(c, t int) Gate { return circuit.NewCNOT(c, t) }

// NewCPhase returns the commuting QAOA cost gate exp(-i θ/2 Z⊗Z).
func NewCPhase(a, b int, theta float64) Gate { return circuit.NewCPhase(a, b, theta) }

// NewSwap returns a SWAP between a and b.
func NewSwap(a, b int) Gate { return circuit.NewSwap(a, b) }

// NewMeasure returns a computational-basis measurement of q.
func NewMeasure(q int) Gate { return circuit.NewMeasure(q) }

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// TrivialLayout maps logical qubit i to physical qubit i.
func TrivialLayout(nLogical, nPhysical int) *Layout {
	return router.TrivialLayout(nLogical, nPhysical)
}

// QAOAExpectation simulates the logical QAOA circuit exactly and returns
// ⟨C⟩ (≤ 24 qubits).
func QAOAExpectation(p *Problem, params Params) (float64, error) {
	return qaoa.Expectation(p, params)
}

// ExpectationSampled estimates ⟨C⟩ and its standard error from measurement
// samples.
func ExpectationSampled(p *Problem, samples []uint64) (mean, stderr float64, err error) {
	return qaoa.ExpectationSampled(p, samples)
}
