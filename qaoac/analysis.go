package qaoac

import (
	"repro/internal/compile"
	"repro/internal/dag"
)

// Commutation analysis (the freedom the compilation passes exploit).

// CircuitDAG is the commutation-relaxed dependency graph of a circuit.
type CircuitDAG = dag.DAG

// Commute reports whether two gates can be exchanged without changing the
// circuit's unitary (conservative: never a false positive).
func Commute(a, b Gate) bool { return dag.Commute(a, b) }

// NewDAG builds the commutation-aware dependency graph of c.
func NewDAG(c *Circuit) *CircuitDAG { return dag.New(c) }

// CommutationDepth returns the depth achievable by re-ordering commuting
// gates on fully-connected hardware — a lower bound for schedulers.
func CommutationDepth(c *Circuit) int { return dag.New(c).Depth() }

// CommutingGroups returns the maximal interchangeable gate runs of c (for
// a QAOA circuit: the per-level cost blocks).
func CommutingGroups(c *Circuit) [][]int { return dag.New(c).CommutingGroups() }

// Compiling external circuits.

// SpecFromCircuit recognizes a QAOA-shaped logical circuit (H prefix, p ×
// [commuting diagonal block + uniform RX mixer], optional measurements) and
// extracts its compiler spec.
func SpecFromCircuit(c *Circuit) (CompileSpec, bool, error) {
	return compile.SpecFromCircuit(c)
}

// CompileCircuit compiles an externally built QAOA-shaped circuit (e.g.
// imported via ImportQASM) through the configured methodology.
func CompileCircuit(c *Circuit, dev *Device, opts CompileOptions) (*CompileResult, error) {
	return compile.CompileCircuit(c, dev, opts)
}
