package qaoac

import (
	"io"

	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Compilation tracing: the per-decision event stream behind qaoac's
// -trace/-explain flags. Set CompileOptions.Trace (or FallbackOptions.Trace)
// to a NewTracer, compile, then export the events with one of the writers
// below. All tracer methods are safe on nil, so leaving Trace unset costs
// nothing. See internal/trace for the schema.

// Tracer accumulates the ordered per-decision event stream of a
// compilation.
type Tracer = trace.Tracer

// TraceEvent is one record of the stream.
type TraceEvent = trace.Event

// TraceMeta describes the compilation a trace belongs to (first event).
type TraceMeta = trace.MetaInfo

// NewTracer returns an empty enabled tracer.
func NewTracer() *Tracer { return trace.New() }

// WriteTraceJSONL writes events as JSON Lines (schema header + one event
// per line). With strip true the timestamps are zeroed, making fixed-seed
// streams byte-identical — the format the CI determinism gate diffs.
func WriteTraceJSONL(w io.Writer, events []TraceEvent, strip bool) error {
	return trace.WriteJSONL(w, events, strip)
}

// ReadTraceJSONL parses a stream produced by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSONL(r) }

// WriteChromeTrace exports events as Chrome trace-event JSON: open the file
// in https://ui.perfetto.dev or chrome://tracing to see per-pass tracks
// with SWAP/placement/layer instants.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChromeTrace(w, events)
}

// WriteTraceExplain renders the stream as a terminal report: placement
// rationale, per-edge SWAP heatmap, layer timeline and the fallback ladder.
func WriteTraceExplain(w io.Writer, events []TraceEvent) { trace.WriteExplain(w, events) }

// WriteTraceDOT renders the coupling graph as Graphviz DOT with edges
// colored by SWAP heat.
func WriteTraceDOT(w io.Writer, events []TraceEvent) { trace.WriteDOT(w, events) }

// StripTraceTimes zeroes every event timestamp in place.
func StripTraceTimes(events []TraceEvent) { trace.StripTimes(events) }

// Live observability endpoint (the -listen flag of qaoa-exp/qaoa-bench).

// ObsProgress is the sweep-progress payload of the /healthz endpoint.
type ObsProgress = obsv.Progress

// ObsServer is a running observability endpoint with readiness control
// (/readyz) and graceful Shutdown. See internal/serve.ObsServer.
type ObsServer = serve.ObsServer

// ServeObservability starts a hardened HTTP server on addr (":0" picks a
// free port) exposing the live collector as Prometheus text metrics on
// /metrics, a JSON liveness + progress probe on /healthz, a readiness
// probe on /readyz (503 "warming up" until SetReady(true, "") is called,
// 503 "draining" after Shutdown begins), and the standard runtime profiles
// under /debug/pprof. progress may be nil. Stop serving with Shutdown.
func ServeObservability(addr string, c *Collector, progress func() ObsProgress) (*ObsServer, error) {
	var pf obsv.ProgressFunc
	if progress != nil {
		pf = func() obsv.Progress { return progress() }
	}
	return serve.ServeObs(addr, c, pf)
}
