package qaoac

import "repro/internal/exp"

// ExpTable is a labelled numeric result grid for one figure panel.
type ExpTable = exp.Table

// Experiment configurations (defaults reproduce the paper's workload sizes).
type (
	// Fig7Config parameterizes the initial-mapping comparison of Fig. 7.
	Fig7Config = exp.Fig7Config
	// Fig8Config parameterizes the problem-size sweep of Fig. 8.
	Fig8Config = exp.Fig8Config
	// Fig9Config parameterizes the ordering comparison of Fig. 9.
	Fig9Config = exp.Fig9Config
	// Fig10Config parameterizes the VIC/IC success-probability study of Fig. 10.
	Fig10Config = exp.Fig10Config
	// Fig11aConfig parameterizes the Fig. 11(a) performance summary.
	Fig11aConfig = exp.Fig11aConfig
	// Fig11bConfig parameterizes the Fig. 11(b) ARG validation.
	Fig11bConfig = exp.Fig11bConfig
	// Fig12Config parameterizes the packing-density study of Fig. 12.
	Fig12Config = exp.Fig12Config
	// DiscussionConfig parameterizes the §VI ring-architecture comparison.
	DiscussionConfig = exp.DiscussionConfig
)

// Default experiment configurations matching the paper.
var (
	DefaultFig7       = exp.DefaultFig7
	DefaultFig8       = exp.DefaultFig8
	DefaultFig9       = exp.DefaultFig9
	DefaultFig10      = exp.DefaultFig10
	DefaultFig11a     = exp.DefaultFig11a
	DefaultFig11b     = exp.DefaultFig11b
	DefaultFig12      = exp.DefaultFig12
	DefaultDiscussion = exp.DefaultDiscussion
)

// Experiment runners; each regenerates the series of one paper figure.
var (
	Fig7       = exp.Fig7
	Fig8       = exp.Fig8
	Fig9       = exp.Fig9
	Fig10      = exp.Fig10
	Fig11a     = exp.Fig11a
	Fig11b     = exp.Fig11b
	Fig12      = exp.Fig12
	Discussion = exp.Discussion
)
