package qaoac

import (
	"math"
	"math/rand"
	"testing"
)

// End-to-end exercise of the public API: generate, compile with every
// preset, simulate, sample, and compare against the analytic expectation.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := MustRandomRegular(8, 3, rng)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	gamma, beta, val, err := OptimizeP1(g)
	if err != nil {
		t.Fatal(err)
	}
	if val <= float64(g.M())/2 {
		t.Errorf("optimized ⟨C⟩ %v not above uniform %v", val, float64(g.M())/2)
	}
	dev := Melbourne15()
	for _, preset := range Presets {
		res, err := Compile(prob, P1Params(gamma, beta), dev, preset.Options(rng))
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		if res.Depth <= 0 || res.GateCount <= 0 {
			t.Errorf("%v: degenerate metrics %d/%d", preset, res.Depth, res.GateCount)
		}
		if err := dev.VerifyCompliant(res.Circuit); err != nil {
			t.Errorf("%v: %v", preset, err)
		}
	}
}

func TestPublicAPISimulationAgreesWithAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(7, 0.5, rng)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildCircuit(prob, P1Params(0.7, 0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Simulate(c)
	got := s.ExpectationDiagonal(prob.Cost)
	want := ExpectationP1Analytic(g, 0.7, 0.3)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("simulated ⟨C⟩ %v vs analytic %v", got, want)
	}
}

func TestPublicAPISamplingAndARG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := MustRandomRegular(6, 3, rng)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	dev := Melbourne15()
	res, err := Compile(prob, P1Params(0.6, 0.25), dev, PresetVIC.Options(rng))
	if err != nil {
		t.Fatal(err)
	}
	ideal := SampleIdeal(res.Circuit, 2000, rng)
	logical := make([]uint64, len(ideal))
	for i, y := range ideal {
		logical[i] = res.ExtractLogical(y)
	}
	r0, err := ApproximationRatio(prob, logical)
	if err != nil {
		t.Fatal(err)
	}
	if r0 <= 0 || r0 > 1 {
		t.Errorf("ideal ratio %v out of range", r0)
	}
	noisy := SampleNoisy(res.Circuit, NoiseFromDevice(dev), 2000, 16, rng)
	for i, y := range noisy {
		logical[i] = res.ExtractLogical(y)
	}
	rh, err := ApproximationRatio(prob, logical)
	if err != nil {
		t.Fatal(err)
	}
	if gap := ARG(r0, rh); gap <= 0 {
		t.Errorf("ARG %v not positive under noise (r0=%v rh=%v)", gap, r0, rh)
	}
}

func TestPublicAPIDevicesAndMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if Tokyo20().NQubits() != 20 || Melbourne15().NQubits() != 15 {
		t.Error("device sizes wrong")
	}
	if GridDevice(6, 6).NQubits() != 36 || LinearDevice(4).NQubits() != 4 || RingDevice(8).NQubits() != 8 {
		t.Error("synthetic device sizes wrong")
	}
	g := ErdosRenyi(10, 0.4, rng)
	l, err := QAIMMapping(g, Tokyo20(), 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.NLogical() != 10 {
		t.Errorf("mapping logical count %d", l.NLogical())
	}
	order := IPOrder(g, rng, 0)
	if len(order) != g.M() {
		t.Errorf("IP order covers %d of %d edges", len(order), g.M())
	}
	if best, _, err := MaxCutExact(g); err != nil || best <= 0 {
		t.Errorf("MaxCutExact = %d, %v", best, err)
	}
}

func TestQAOAExpectationAndSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := MustRandomRegular(8, 3, rng)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	params := P1Params(0.5, 0.2)
	exact, err := QAOAExpectation(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExpectationP1Analytic(g, 0.5, 0.2); math.Abs(exact-want) > 1e-8 {
		t.Errorf("QAOAExpectation = %v, want %v", exact, want)
	}
	c, err := BuildCircuit(prob, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean, stderr, err := ExpectationSampled(prob, SampleIdeal(c, 20000, rng))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-exact) > 5*stderr+0.05 {
		t.Errorf("sampled mean %v ± %v far from exact %v", mean, stderr, exact)
	}
	if stderr <= 0 {
		t.Error("stderr not positive")
	}
}
