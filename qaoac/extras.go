package qaoac

import (
	"repro/internal/crosstalk"
	"repro/internal/exp"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// Device serialization.

// DeviceFromJSON loads a custom device (coupling map + calibration) from
// its JSON description.
func DeviceFromJSON(data []byte) (*Device, error) { return deviceFromJSON(data) }

// OpenQASM interchange.

// ExportQASM renders a circuit as an OpenQASM 2.0 program (CPhase → rzz).
func ExportQASM(c *Circuit) string { return qasm.Export(c) }

// ImportQASM parses the OpenQASM 2.0 subset ExportQASM emits.
func ImportQASM(src string) (*Circuit, error) { return qasm.Import(src) }

// Crosstalk-aware scheduling (§VI).

// PronePairs is a set of coupler pairs that interfere when driven
// simultaneously.
type PronePairs = crosstalk.PronePairs

// NewPronePairs returns an empty prone-pair set.
func NewPronePairs() *PronePairs { return crosstalk.NewPronePairs() }

// CrosstalkSchedule assigns time steps so no prone coupler pair is
// concurrent; it returns per-gate steps and the schedule depth.
func CrosstalkSchedule(c *Circuit, prone *PronePairs) ([]int, int) {
	return crosstalk.Schedule(c, prone)
}

// CrosstalkDepth returns the crosstalk-aware schedule depth of c.
func CrosstalkDepth(c *Circuit, prone *PronePairs) int { return crosstalk.Depth(c, prone) }

// DrawCircuit renders a circuit as ASCII art (one wire per qubit).
func DrawCircuit(c *Circuit) string { return c.Draw() }

// IBMDurations returns the superconducting gate-timing model; pair with
// Circuit.ExecutionTime for wall-clock estimates.
func IBMDurations() Durations { return circuitIBMDurations() }

// Durations maps gate kinds to execution times.
type Durations = circuitDurations

// Circuit optimization.

// Peephole applies local gate cancellation and rotation merging, preserving
// the circuit's unitary up to global phase.
func Peephole(c *Circuit) *Circuit { return circuitPeephole(c) }

// Optimal-routing baseline.

// OptimalSwaps computes the exact minimum SWAP count for a set of two-qubit
// gates on a tiny device (≤ 8 physical qubits) — the constraint-solver-style
// baseline of §III, for validating the heuristic router.
var OptimalSwaps = routerOptimalSwaps

// Extension experiments (beyond the paper's printed figures).
type (
	// ExtLevelsConfig parameterizes the p-scaling study.
	ExtLevelsConfig = exp.ExtLevelsConfig
	// ExtMappersConfig parameterizes the initial-mapping ablation.
	ExtMappersConfig = exp.ExtMappersConfig
	// ExtCrosstalkConfig parameterizes the crosstalk-serialization study.
	ExtCrosstalkConfig = exp.ExtCrosstalkConfig
	// ExtOptimizeConfig parameterizes the peephole-gains study.
	ExtOptimizeConfig = exp.ExtOptimizeConfig
	// ExtDevicesConfig parameterizes the topology-comparison study.
	ExtDevicesConfig = exp.ExtDevicesConfig
	// ExtOrderingConfig parameterizes the IP-vs-Vizing ordering ablation.
	ExtOrderingConfig = exp.ExtOrderingConfig
	// ExtMitigationConfig parameterizes the readout-mitigation study.
	ExtMitigationConfig = exp.ExtMitigationConfig
	// ExtWorkloadsConfig parameterizes the workload-family study.
	ExtWorkloadsConfig = exp.ExtWorkloadsConfig
	// AngleSweepConfig parameterizes the (γ,β) landscape sweep.
	AngleSweepConfig = exp.AngleSweepConfig
)

// Defaults and runners for the extension experiments.
var (
	DefaultExtLevels     = exp.DefaultExtLevels
	DefaultExtMappers    = exp.DefaultExtMappers
	DefaultExtCrosstalk  = exp.DefaultExtCrosstalk
	DefaultExtOptimize   = exp.DefaultExtOptimize
	ExtLevels            = exp.ExtLevels
	ExtMappers           = exp.ExtMappers
	ExtCrosstalk         = exp.ExtCrosstalk
	ExtOptimize          = exp.ExtOptimize
	DefaultExtDevices    = exp.DefaultExtDevices
	ExtDevices           = exp.ExtDevices
	DefaultExtOrdering   = exp.DefaultExtOrdering
	ExtOrdering          = exp.ExtOrdering
	DefaultExtMitigation = exp.DefaultExtMitigation
	ExtMitigation        = exp.ExtMitigation
	DefaultExtWorkloads  = exp.DefaultExtWorkloads
	ExtWorkloads         = exp.ExtWorkloads
	DefaultAngleSweep    = exp.DefaultAngleSweep
	AngleSweep           = exp.AngleSweep
)

// Measurement post-processing.

// SampleHistogram counts measurement outcomes.
func SampleHistogram(samples []uint64) map[uint64]int { return sim.Histogram(samples) }

// TotalVariation is the TV distance between two outcome histograms.
func TotalVariation(p, q map[uint64]int) float64 { return sim.TotalVariation(p, q) }

// MitigateReadout inverts independent per-qubit readout errors on a
// measured histogram (tensored measurement-error mitigation), returning a
// quasi-probability vector over all 2^n outcomes.
func MitigateReadout(counts map[uint64]int, n int, readout []float64) ([]float64, error) {
	return sim.MitigateReadout(counts, n, readout)
}

// ClampDistribution projects a quasi-probability vector onto the simplex.
func ClampDistribution(p []float64) []float64 { return sim.ClampDistribution(p) }

// ExpectationFromDistribution evaluates a diagonal observable against an
// outcome distribution.
func ExpectationFromDistribution(p []float64, f func(x uint64) float64) float64 {
	return sim.ExpectationFromDistribution(p, f)
}
