package qaoac

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/exp"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// Observability: per-pass tracing, counters and the BENCH_*.json metrics
// artifact. A Collector threads through compilation via
// CompileOptions.Obs / Device.Obs; the sweep harness and simulator pick it
// up through SetObservability. All collector methods are safe on nil, so
// leaving Obs unset costs nothing.

// Collector accumulates counters, gauges and span timings.
type Collector = obsv.Collector

// BenchReport is the stable machine-readable metrics artifact
// (BENCH_<rev>.json).
type BenchReport = obsv.Report

// BenchRecord is one named benchmark measurement of a report.
type BenchRecord = obsv.Benchmark

// BenchRegression is one benchmark metric that worsened beyond its
// threshold.
type BenchRegression = obsv.Regression

// BenchCompareOptions tunes the regression gate thresholds.
type BenchCompareOptions = obsv.CompareOptions

// BenchSuiteConfig parameterizes the reduced Fig. 7/8/9 benchmark suite.
type BenchSuiteConfig = exp.BenchConfig

// NewCollector returns an empty enabled collector.
func NewCollector() *Collector { return obsv.New() }

// SetObservability installs c as the process-wide collector of the sweep
// harness (exp) and the simulator. Pass nil to disable. Compilations you
// drive yourself still need CompileOptions.Obs set explicitly.
func SetObservability(c *Collector) {
	exp.SetCollector(c)
	sim.SetCollector(c)
}

// NewBenchReport builds a report for the given tool name and revision,
// snapshotting c (which may be nil).
func NewBenchReport(tool, revision string, c *Collector) *BenchReport {
	return obsv.NewReport(tool, revision, c)
}

// DefaultBenchFilename returns the conventional artifact name
// BENCH_<revision>.json.
func DefaultBenchFilename(revision string) string { return obsv.DefaultFilename(revision) }

// ReadBenchReport loads and schema-checks a BENCH_*.json file.
func ReadBenchReport(path string) (*BenchReport, error) { return obsv.ReadReportFile(path) }

// CompareBenchReports gates cur against base, returning every metric that
// regressed beyond the thresholds (empty means the gate passes).
func CompareBenchReports(base, cur *BenchReport, opts BenchCompareOptions) []BenchRegression {
	return obsv.Compare(base, cur, opts)
}

// DefaultBenchSuiteConfig returns the CI-scale suite configuration.
func DefaultBenchSuiteConfig() BenchSuiteConfig { return exp.DefaultBenchConfig() }

// RunBenchSuite runs the reduced figure benchmarks and appends their
// records to rep (see exp.RunBenchSuite).
func RunBenchSuite(ctx context.Context, cfg BenchSuiteConfig, rep *BenchReport) error {
	return exp.RunBenchSuite(ctx, cfg, rep)
}

// ParamBindConfig sizes the parameterized-compilation evidence suite.
type ParamBindConfig = exp.ParamBindConfig

// DefaultParamBind returns the CI-scale evidence-suite configuration.
func DefaultParamBind() ParamBindConfig { return exp.DefaultParamBind() }

// RunParamBindSuite runs the hybrid-loop and angle-sweep workloads in the
// configured compilation mode and appends their records to rep (see
// exp.RunParamBindSuite).
func RunParamBindSuite(ctx context.Context, cfg ParamBindConfig, rep *BenchReport) error {
	return exp.RunParamBindSuite(ctx, cfg, rep)
}

// CalibrateTimeUnit times the fixed CPU-bound calibration workload whose
// duration (Report.TimeUnitSec) normalizes compile times across machines.
func CalibrateTimeUnit() float64 { return exp.CalibrateTimeUnit() }

// RevisionFromEnv returns the revision to stamp into reports: the argument
// if non-empty, else $GITHUB_SHA, else "dev".
func RevisionFromEnv(rev string) string {
	if rev != "" {
		return rev
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "dev"
}

// OpenLogWriter resolves the conventional -log flag every binary shares:
// "" disables (nil writer), "-" is stderr, anything else opens the file for
// append. close is a no-op unless a file was opened; callers defer it
// unconditionally.
func OpenLogWriter(path string) (w io.Writer, close func() error, err error) {
	switch path {
	case "":
		return nil, func() error { return nil }, nil
	case "-":
		return os.Stderr, func() error { return nil }, nil
	default:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("qaoac: opening log %s: %w", path, err)
		}
		return f, f.Close, nil
	}
}

// NewWideLogger builds the shared one-JSON-object-per-line logger over w
// (nil w yields a logger that discards everything). See obsv.NewLogger.
func NewWideLogger(w io.Writer) *slog.Logger { return obsv.NewLogger(w) }
