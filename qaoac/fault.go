package qaoac

import (
	"context"

	"repro/internal/compile"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/loop"
)

// Fault tolerance: deadlines, degraded devices and graceful preset
// degradation. See the "Fault model & degradation policy" sections of
// README.md and DESIGN.md.

// CompileContext is Compile honoring a deadline/cancellation: the context
// is checked between passes and between routed layers, and pass panics are
// converted into *PanicError instead of crossing the API boundary.
func CompileContext(ctx context.Context, prob *Problem, params Params, dev *Device, opts CompileOptions) (*CompileResult, error) {
	return compile.CompileContext(ctx, prob, params, dev, opts)
}

// FallbackOptions tunes CompileResilient's retry/degradation policy.
type FallbackOptions = compile.FallbackOptions

// FallbackInfo records which preset a resilient compilation actually ran
// and why (attached to CompileResult.Fallback).
type FallbackInfo = compile.FallbackInfo

// FallbackAttempt is one recorded compilation attempt of the ladder.
type FallbackAttempt = compile.Attempt

// LadderError reports that every rung of the degradation ladder failed.
type LadderError = compile.LadderError

// PanicError is a compiler-pass panic converted into an error at the
// compile boundary.
type PanicError = compile.PanicError

// CompileHook is an optional callback invoked at pass boundaries
// (CompileOptions.Hook) — the fault-injection seam.
type CompileHook = compile.Hook

// Ladder returns the degradation sequence tried for a preset, starting with
// the preset itself (e.g. VIC → IC → IP → NAIVE).
func Ladder(p Preset) []Preset { return compile.Ladder(p) }

// CompileResilient compiles with retries and graceful preset degradation:
// each ladder rung is retried with backoff on fresh seeds before stepping
// down, and the result records which preset actually ran.
func CompileResilient(ctx context.Context, prob *Problem, params Params, dev *Device, preset Preset, fo FallbackOptions) (*CompileResult, error) {
	return compile.CompileResilient(ctx, prob, params, dev, preset, fo)
}

// Fault injection.

// FaultSpec describes a reproducible device degradation (dead qubits,
// dropped couplings, deleted/drifted calibration), driven by a seed.
type FaultSpec = faultinject.Spec

// FaultReport lists what a FaultSpec application actually degraded.
type FaultReport = faultinject.Report

// PassFaults builds a CompileHook that deterministically errors, panics or
// stalls — for exercising the recovery and deadline machinery.
type PassFaults = faultinject.PassFaults

// ErrInjected is the sentinel error returned by fault-injecting pass hooks.
var ErrInjected = faultinject.ErrInjected

// Experiment fault reports.

// PointReport is the structured failure summary of one partially-failed
// experiment sweep point.
type PointReport = exp.PointReport

// InstanceFailure is one persistent instance×preset compilation failure.
type InstanceFailure = exp.InstanceFailure

// DrainFaultReports returns and clears the fault reports accumulated by the
// experiment harness since the previous drain.
func DrainFaultReports() []*PointReport { return exp.DrainFaultReports() }

// OptimizeLoopContext is OptimizeLoop honoring a deadline/cancellation.
func OptimizeLoopContext(ctx context.Context, ev Evaluator, prob *Problem, opts LoopOptions) (LoopResult, error) {
	return loop.RunContext(ctx, ev, prob, opts)
}
