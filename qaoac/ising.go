package qaoac

import (
	"repro/internal/compile"
	"repro/internal/ising"
)

// General Ising-form cost Hamiltonians (§VI "Applicability beyond
// QAOA-MaxCut"): any problem expressible as H = Σ h_i·s_i + Σ J_ij·s_i·s_j
// compiles through the same methodologies, each quadratic term becoming one
// commuting CPhase gate.

// IsingModel is an Ising Hamiltonian over spins s ∈ {−1,+1}.
type IsingModel = ising.Model

// IsingCoupling is one quadratic term of an IsingModel.
type IsingCoupling = ising.Coupling

// CompileSpec is the compiler-facing description of a generic commuting
// cost Hamiltonian (one entry per QAOA level).
type CompileSpec = compile.Spec

// ZZTerm is one commuting two-qubit cost gate of a CompileSpec.
type ZZTerm = compile.ZZTerm

// NewIsing returns a zero Hamiltonian over n spins.
func NewIsing(n int) *IsingModel { return ising.New(n) }

// IsingFromQUBO converts a QUBO objective into an Ising model and offset
// with f(x) = offset + Energy(x).
func IsingFromQUBO(q [][]float64) (*IsingModel, float64, error) { return ising.FromQUBO(q) }

// IsingMaxCut returns the Ising form of MaxCut: cut = offset − Energy.
func IsingMaxCut(g *Graph) (*IsingModel, float64) { return ising.MaxCut(g) }

// IsingNumberPartition returns the Ising form of two-way number
// partitioning: (Σ s_i·w_i)² = offset + Energy.
func IsingNumberPartition(weights []float64) (*IsingModel, float64) {
	return ising.NumberPartition(weights)
}

// IsingSpin returns the spin value s_i ∈ {−1,+1} of basis state x.
func IsingSpin(x uint64, i int) float64 { return ising.Spin(x, i) }

// CompileIsing lowers the QAOA circuit for an arbitrary Ising Hamiltonian
// onto dev with the configured methodology.
func CompileIsing(m *IsingModel, params Params, dev *Device, opts CompileOptions) (*CompileResult, error) {
	spec, err := m.CompileSpec(params)
	if err != nil {
		return nil, err
	}
	return compile.CompileSpec(spec, dev, opts)
}
