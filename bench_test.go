// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (reduced instance counts — cmd/qaoa-exp runs full
// scale) plus ablation benches for the design choices called out in
// DESIGN.md §5.
package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/qaoac"
)

// --- Figure benchmarks -----------------------------------------------------

// BenchmarkFig7 regenerates the Fig. 7 mapping comparison (NAIVE vs GreedyV
// vs QAIM) at reduced instance count.
func BenchmarkFig7(b *testing.B) {
	cfg := qaoac.DefaultFig7()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the Fig. 8 problem-size sweep.
func BenchmarkFig8(b *testing.B) {
	cfg := qaoac.DefaultFig8()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the Fig. 9 ordering comparison (QAIM vs IP vs
// IC).
func BenchmarkFig9(b *testing.B) {
	cfg := qaoac.DefaultFig9()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the Fig. 10 VIC/IC success-probability study.
func BenchmarkFig10(b *testing.B) {
	cfg := qaoac.DefaultFig10()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11a regenerates the Fig. 11(a) performance-summary table.
func BenchmarkFig11a(b *testing.B) {
	cfg := qaoac.DefaultFig11a()
	cfg.InstancesPerPoint = 2
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig11a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b regenerates the Fig. 11(b) ARG validation on the noisy
// melbourne model (heavily reduced shots/trajectories).
func BenchmarkFig11b(b *testing.B) {
	cfg := qaoac.DefaultFig11b()
	cfg.Nodes = 10
	cfg.Instances = 2
	cfg.Shots = 1024
	cfg.Trajectories = 8
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig11b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates the Fig. 12 packing-density sweep.
func BenchmarkFig12(b *testing.B) {
	cfg := qaoac.DefaultFig12()
	cfg.Instances = 2
	cfg.PackingLimits = []int{1, 5, 9, 13, 18}
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Fig12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscussion regenerates the §VI ring-architecture comparison.
func BenchmarkDiscussion(b *testing.B) {
	cfg := qaoac.DefaultDiscussion()
	cfg.Instances = 10
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.Discussion(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pass micro-benchmarks ---------------------------------------------------

func benchProblem(n, d int, seed int64) *qaoac.Problem {
	g := qaoac.MustRandomRegular(n, d, rand.New(rand.NewSource(seed)))
	return &qaoac.Problem{G: g, MaxCut: 1}
}

// BenchmarkQAIMMapping measures the QAIM initial-mapping pass alone.
func BenchmarkQAIMMapping(b *testing.B) {
	prob := benchProblem(18, 4, 1)
	dev := qaoac.Tokyo20()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.QAIMMapping(prob.G, dev, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIPOrder measures the instruction-parallelization pass alone.
func BenchmarkIPOrder(b *testing.B) {
	prob := benchProblem(20, 8, 3)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := qaoac.IPOrder(prob.G, rng, 0); len(got) != prob.G.M() {
			b.Fatal("short order")
		}
	}
}

// BenchmarkCompile measures one full compilation per preset on a 20-node
// 4-regular instance targeting tokyo.
func BenchmarkCompile(b *testing.B) {
	prob := benchProblem(20, 4, 5)
	devT := qaoac.Tokyo20()
	devM := qaoac.Melbourne15()
	params := qaoac.P1Params(0.5, 0.2)
	for _, preset := range qaoac.Presets {
		preset := preset
		dev := devT
		if preset == qaoac.PresetVIC {
			dev = devM // VIC needs calibration; melbourne carries one
		}
		b.Run(preset.String(), func(b *testing.B) {
			p := prob
			if dev == devM {
				p = benchProblem(14, 4, 5)
			}
			for i := 0; i < b.N; i++ {
				if _, err := qaoac.Compile(p, params, dev, preset.Options(rand.New(rand.NewSource(6)))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures state-vector execution of a compiled 12-node
// circuit on the melbourne register (2^15 amplitudes).
func BenchmarkSimulator(b *testing.B) {
	prob := benchProblem(12, 4, 7)
	dev := qaoac.Melbourne15()
	res, err := qaoac.Compile(prob, qaoac.P1Params(0.5, 0.2), dev,
		qaoac.PresetIC.Options(rand.New(rand.NewSource(8))))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qaoac.Simulate(res.Circuit)
	}
}

// BenchmarkNoisySampling measures one noisy trajectory + sampling pass.
func BenchmarkNoisySampling(b *testing.B) {
	prob := benchProblem(12, 4, 9)
	dev := qaoac.Melbourne15()
	res, err := qaoac.Compile(prob, qaoac.P1Params(0.5, 0.2), dev,
		qaoac.PresetVIC.Options(rand.New(rand.NewSource(10))))
	if err != nil {
		b.Fatal(err)
	}
	nm := qaoac.NoiseFromDevice(dev)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qaoac.SampleNoisy(res.Circuit, nm, 64, 1, rng)
	}
}

// --- Ablation benches (DESIGN.md §5) ----------------------------------------

// BenchmarkAblationStrengthRadius compares QAIM quality/cost across the
// connectivity-strength neighbourhood radius (1 vs 2 vs 3). The reported
// metric of interest is the custom "depth" counter.
func BenchmarkAblationStrengthRadius(b *testing.B) {
	prob := benchProblem(18, 3, 12)
	dev := qaoac.Tokyo20()
	params := qaoac.P1Params(0.5, 0.2)
	for _, radius := range []int{1, 2, 3} {
		radius := radius
		b.Run(map[int]string{1: "r1", 2: "r2", 3: "r3"}[radius], func(b *testing.B) {
			totalDepth := 0
			for i := 0; i < b.N; i++ {
				opts := qaoac.PresetIC.Options(rand.New(rand.NewSource(13)))
				opts.StrengthRadius = radius
				res, err := qaoac.Compile(prob, params, dev, opts)
				if err != nil {
					b.Fatal(err)
				}
				totalDepth += res.Depth
			}
			b.ReportMetric(float64(totalDepth)/float64(b.N), "depth")
		})
	}
}

// BenchmarkAblationLookahead compares router lookahead weights (0 = none).
func BenchmarkAblationLookahead(b *testing.B) {
	prob := benchProblem(20, 6, 14)
	dev := qaoac.Tokyo20()
	params := qaoac.P1Params(0.5, 0.2)
	for _, w := range []struct {
		name   string
		weight float64
	}{{"off", -1}, {"w050", 0.5}, {"w100", 1.0}} {
		w := w
		b.Run(w.name, func(b *testing.B) {
			totalGates := 0
			for i := 0; i < b.N; i++ {
				opts := qaoac.PresetIC.Options(rand.New(rand.NewSource(15)))
				opts.LookaheadWeight = w.weight
				res, err := qaoac.Compile(prob, params, dev, opts)
				if err != nil {
					b.Fatal(err)
				}
				totalGates += res.GateCount
			}
			b.ReportMetric(float64(totalGates)/float64(b.N), "gates")
		})
	}
}

// BenchmarkAblationPacking compares IC packing limits on a dense instance.
func BenchmarkAblationPacking(b *testing.B) {
	prob := benchProblem(20, 8, 16)
	dev := qaoac.Tokyo20()
	params := qaoac.P1Params(0.5, 0.2)
	for _, lim := range []struct {
		name  string
		limit int
	}{{"lim1", 1}, {"lim5", 5}, {"full", 0}} {
		lim := lim
		b.Run(lim.name, func(b *testing.B) {
			totalDepth := 0
			for i := 0; i < b.N; i++ {
				opts := qaoac.PresetIC.Options(rand.New(rand.NewSource(17)))
				opts.PackingLimit = lim.limit
				res, err := qaoac.Compile(prob, params, dev, opts)
				if err != nil {
					b.Fatal(err)
				}
				totalDepth += res.Depth
			}
			b.ReportMetric(float64(totalDepth)/float64(b.N), "depth")
		})
	}
}

// --- Extension-experiment benches --------------------------------------------

// BenchmarkExtLevels runs the p-scaling study at reduced size.
func BenchmarkExtLevels(b *testing.B) {
	cfg := qaoac.DefaultExtLevels()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.ExtLevels(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtMappers runs the initial-mapping ablation at reduced size.
func BenchmarkExtMappers(b *testing.B) {
	cfg := qaoac.DefaultExtMappers()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.ExtMappers(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCrosstalk runs the crosstalk-serialization study.
func BenchmarkExtCrosstalk(b *testing.B) {
	cfg := qaoac.DefaultExtCrosstalk()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.ExtCrosstalk(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtOptimize runs the peephole-gains study.
func BenchmarkExtOptimize(b *testing.B) {
	cfg := qaoac.DefaultExtOptimize()
	cfg.Instances = 4
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.ExtOptimize(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeephole measures the optimizer pass alone on a compiled native
// circuit.
func BenchmarkPeephole(b *testing.B) {
	prob := benchProblem(18, 5, 20)
	res, err := qaoac.Compile(prob, qaoac.P1Params(0.5, 0.2), qaoac.Tokyo20(),
		qaoac.PresetIC.Options(rand.New(rand.NewSource(21))))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qaoac.Peephole(res.Native)
	}
}

// BenchmarkQASMRoundTrip measures export + import of a compiled circuit.
func BenchmarkQASMRoundTrip(b *testing.B) {
	prob := benchProblem(14, 3, 22)
	res, err := qaoac.Compile(prob, qaoac.P1Params(0.5, 0.2), qaoac.Melbourne15(),
		qaoac.PresetIC.Options(rand.New(rand.NewSource(23))))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := qaoac.ExportQASM(res.Circuit)
		if _, err := qaoac.ImportQASM(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouterTrials compares single-shot routing against the
// stochastic-swap variant (best of N randomized attempts).
func BenchmarkAblationRouterTrials(b *testing.B) {
	prob := benchProblem(18, 5, 30)
	dev := qaoac.Tokyo20()
	params := qaoac.P1Params(0.5, 0.2)
	for _, trials := range []struct {
		name string
		n    int
	}{{"t1", 0}, {"t4", 4}, {"t16", 16}} {
		trials := trials
		b.Run(trials.name, func(b *testing.B) {
			totalSwaps := 0
			for i := 0; i < b.N; i++ {
				opts := qaoac.PresetIC.Options(rand.New(rand.NewSource(31)))
				opts.RouterTrials = trials.n
				res, err := qaoac.Compile(prob, params, dev, opts)
				if err != nil {
					b.Fatal(err)
				}
				totalSwaps += res.SwapCount
			}
			b.ReportMetric(float64(totalSwaps)/float64(b.N), "swaps")
		})
	}
}

// BenchmarkEdgeColoring measures the Misra–Gries pass on a dense instance.
func BenchmarkEdgeColoring(b *testing.B) {
	g := qaoac.MustRandomRegular(20, 8, rand.New(rand.NewSource(50)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.EdgeColoring(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxCutAnneal measures the annealing solver on a 36-node instance.
func BenchmarkMaxCutAnneal(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	g := qaoac.ErdosRenyi(36, 0.5, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qaoac.MaxCutAnneal(g, 100, rng)
	}
}

// BenchmarkMitigateReadout measures histogram inversion on the melbourne
// register.
func BenchmarkMitigateReadout(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	samples := make([]uint64, 8192)
	for i := range samples {
		samples[i] = rng.Uint64() & ((1 << 15) - 1)
	}
	counts := qaoac.SampleHistogram(samples)
	readout := qaoac.Melbourne15().Calib.ReadoutError
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qaoac.MitigateReadout(counts, 15, readout); err != nil {
			b.Fatal(err)
		}
	}
}
