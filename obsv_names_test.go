// The metric-name registry gate: every counter, gauge and span the pipeline
// records must be declared in internal/obsv/names.go. The gate has two
// halves. The static half is the obsvnames analyzer of cmd/qaoalint, which
// rejects any non-registry name at a producer call site on every file at
// vet speed. The runtime half lives here and catches what static scoping
// cannot — names forwarded through variables or built dynamically:
//
//   - TestPipelineRecordsOnlyRegisteredNamesSlim runs always (including
//     -short): one resilient compile plus one hardware-in-the-loop
//     evaluation, a few hundred milliseconds.
//   - TestPipelineRecordsOnlyRegisteredNames is the full-bench sweep over
//     every instrumented path; it is demoted to non-short runs because the
//     slim variant plus the analyzer already cover the registry invariant.
package repro

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obsv"
	"repro/qaoac"
)

// TestPipelineRecordsOnlyRegisteredNamesSlim is the short-mode registry
// gate: the fallback ladder and the hardware-in-the-loop evaluator touch
// compile, router, trace, loop and sim producers in well under a second.
func TestPipelineRecordsOnlyRegisteredNamesSlim(t *testing.T) {
	c := qaoac.NewCollector()
	qaoac.SetObservability(c)
	defer qaoac.SetObservability(nil)

	rng := rand.New(rand.NewSource(3))
	g := qaoac.MustRandomRegular(8, 3, rng)
	prob := &qaoac.Problem{G: g, MaxCut: 1}
	tr := qaoac.NewTracer()
	if _, err := qaoac.CompileResilient(context.Background(), prob, qaoac.P1Params(0.5, 0.2),
		qaoac.Tokyo20(), qaoac.PresetVIC, qaoac.FallbackOptions{Obs: c, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	hw := &qaoac.HardwareEvaluator{
		Prob: prob, Dev: qaoac.Melbourne15(), Preset: qaoac.PresetIC,
		P: 1, Shots: 64, Trajectories: 1, Obs: c,
	}
	if _, err := hw.Expectation(qaoac.P1Params(0.4, 0.3)); err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Spans) == 0 {
		t.Fatal("pipeline recorded nothing; the gate would be vacuous")
	}
	if got := snap.Unregistered(); len(got) != 0 {
		t.Errorf("pipeline recorded names missing from the obsv registry: %v\n"+
			"declare them in internal/obsv/names.go or fix the producer", got)
	}
}

func TestPipelineRecordsOnlyRegisteredNames(t *testing.T) {
	if testing.Short() {
		t.Skip("full-bench registry sweep; the slim variant and the obsvnames analyzer cover short runs")
	}
	c := qaoac.NewCollector()
	qaoac.SetObservability(c)
	defer qaoac.SetObservability(nil)

	// 1. The reduced bench suite: compile/router/device/exp/sim counters.
	cfg := qaoac.DefaultBenchSuiteConfig()
	cfg.Instances = 2
	cfg.Nodes = 10
	cfg.ARGNodes = 8
	cfg.ARGShots = 128
	cfg.ARGTrajectories = 2
	rep := qaoac.NewBenchReport("registry-test", "dev", nil)
	if err := qaoac.RunBenchSuite(context.Background(), cfg, rep); err != nil {
		t.Fatal(err)
	}

	// 2. A reduced figure sweep: the exp/instance span and counters live on
	// the sweep path, not the bench suite.
	figCfg := qaoac.DefaultFig7()
	figCfg.Instances = 2
	if _, err := qaoac.Fig7(figCfg); err != nil {
		t.Fatal(err)
	}

	// 3. The fallback ladder with tracing: fallback and trace counters.
	rng := rand.New(rand.NewSource(3))
	g := qaoac.MustRandomRegular(8, 3, rng)
	prob := &qaoac.Problem{G: g, MaxCut: 1}
	tr := qaoac.NewTracer()
	res, err := qaoac.CompileResilient(context.Background(), prob, qaoac.P1Params(0.5, 0.2),
		qaoac.Tokyo20(), qaoac.PresetVIC, qaoac.FallbackOptions{Obs: c, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback == nil || !res.Fallback.Degraded {
		t.Fatal("VIC on uncalibrated tokyo should degrade through the ladder")
	}

	// 4. Hardware-in-the-loop evaluation: loop and sim counters.
	hw := &qaoac.HardwareEvaluator{
		Prob: prob, Dev: qaoac.Melbourne15(), Preset: qaoac.PresetIC,
		P: 1, Shots: 64, Trajectories: 1, Obs: c,
	}
	if _, err := hw.Expectation(qaoac.P1Params(0.4, 0.3)); err != nil {
		t.Fatal(err)
	}

	snap := c.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Spans) == 0 {
		t.Fatal("pipeline recorded nothing; the gate would be vacuous")
	}
	if got := snap.Unregistered(); len(got) != 0 {
		t.Errorf("pipeline recorded names missing from the obsv registry: %v\n"+
			"declare them in internal/obsv/names.go or fix the producer", got)
	}
	// Spot-check the load-bearing ones actually fired, so a renamed constant
	// cannot silently hollow out this gate.
	for _, name := range []string{
		obsv.CntCompilations, obsv.CntCompileSwaps, obsv.CntRouterSwaps,
		obsv.CntDeviceHopDistBuilds, obsv.CntExpInstances,
		obsv.CntFallbackAttempts, obsv.CntTraceEvents,
		obsv.CntLoopEvaluations, obsv.CntSimRuns,
		obsv.CntSimFusedOps, obsv.CntSimAmpOps,
		obsv.CntSimTrajectories, obsv.CntSimNoisyShots,
		obsv.CntSimCutTableBuilds,
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("expected counter %q was never recorded", name)
		}
	}
	// Every trajectory either reuses the shared ideal state or replays from a
	// checkpoint; the split depends on the fault draws, but the counters must
	// account for all of them.
	reuses := snap.Counters[obsv.CntSimIdealReuses]
	replays := snap.Counters[obsv.CntSimReplays]
	if traj := snap.Counters[obsv.CntSimTrajectories]; reuses+replays != traj {
		t.Errorf("ideal_reuses (%d) + replays (%d) != trajectories (%d)", reuses, replays, traj)
	}
	if snap.Counters[obsv.CntSimCheckpoints] != replays {
		t.Errorf("checkpoints (%d) != replays (%d)", snap.Counters[obsv.CntSimCheckpoints], replays)
	}
	for _, name := range []string{
		obsv.SpanCompileTotal, obsv.SpanExpInstance, obsv.SpanLoopExpectation,
		obsv.SpanSimIdealRun, obsv.SpanSimSampleNoisy,
	} {
		found := false
		for _, sp := range snap.Spans {
			if sp.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected span %q was never recorded", name)
		}
	}

	// End to end through the live metrics endpoint: every registered name the
	// run recorded must surface as a Prometheus series, including the new
	// simulator counters a -listen qaoa-bench run exports.
	srv := httptest.NewServer(obsv.NewHandler(c, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{
		"qaoa_sim_runs_total",
		"qaoa_sim_fused_ops_total",
		"qaoa_sim_amp_ops_total",
		"qaoa_sim_trajectories_total",
		"qaoa_sim_cut_table_builds_total",
		"qaoa_compile_compilations_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics is missing series %q", series)
		}
	}
}
