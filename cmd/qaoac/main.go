// Command qaoac compiles a QAOA-MaxCut instance for a target device with a
// chosen methodology and prints the compiled circuit and its quality
// metrics.
//
// Usage:
//
//	qaoac -device tokyo -graph regular -nodes 16 -degree 3 -method IC [-print] [-p 1] [-seed 1]
//	qaoac -device melbourne -graph er -nodes 12 -prob 0.5 -method VIC
//	qaoac -device grid6x6 -graph er -nodes 36 -prob 0.5 -method IP -packing 8
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/qaoac"
)

func main() {
	var (
		deviceName = flag.String("device", "tokyo", "target device: tokyo | melbourne | falcon27 | grid6x6 | linearN | ringN")
		deviceFile = flag.String("device-file", "", "load a custom device from a JSON file (overrides -device)")
		graphKind  = flag.String("graph", "regular", "problem family: regular | er")
		graphFile  = flag.String("graph-file", "", "load the problem graph from an edge-list file (overrides -graph)")
		nodes      = flag.Int("nodes", 16, "problem graph size")
		degree     = flag.Int("degree", 3, "edges per node (regular graphs)")
		prob       = flag.Float64("prob", 0.5, "edge probability (erdos-renyi graphs)")
		method     = flag.String("method", "IC", "compilation method: NAIVE | GreedyV | QAIM | IP | IC | VIC")
		levels     = flag.Int("p", 1, "QAOA levels")
		packing    = flag.Int("packing", 0, "max CPhase gates per layer (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "random seed")
		print      = flag.Bool("print", false, "print the compiled circuit")
		native     = flag.Bool("native", false, "print the native-basis circuit instead")
		draw       = flag.Bool("draw", false, "draw the compiled circuit as ASCII art")
		timeout    = flag.Duration("timeout", 0, "abort compilation after this long (0 = no deadline)")
		resilient  = flag.Bool("resilient", false, "retry and degrade through the preset ladder on failure")
		deadQubits = flag.Int("fault-dead", 0, "fault injection: kill this many random qubits")
		dropCalib  = flag.Float64("fault-calib", 0, "fault injection: delete this fraction of CNOT calibration entries")
		faultSeed  = flag.Int64("fault-seed", 1, "fault injection: seed for the degradation")
		metricsOut = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the compilation to this path")
		rev        = flag.String("rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the compilation to this path (open in ui.perfetto.dev)")
		traceJSONL = flag.String("trace-jsonl", "", "write the raw decision-event stream as JSON Lines to this path")
		traceStrip = flag.Bool("trace-strip", false, "zero timestamps in the JSONL trace (byte-identical across fixed-seed runs)")
		explain    = flag.Bool("explain", false, "print the compilation's decision report: placements, SWAP heatmap, layer timeline")
		explainDOT = flag.String("explain-dot", "", "write the SWAP-heat coupling graph as Graphviz DOT to this path")
	)
	flag.Parse()

	tf := traceFlags{Chrome: *traceOut, JSONL: *traceJSONL, Strip: *traceStrip, Explain: *explain, DOT: *explainDOT}
	if err := run(*deviceName, *deviceFile, *graphKind, *graphFile, *nodes, *degree, *prob, *method, *levels, *packing, *seed, *print, *native, *draw,
		*timeout, *resilient, *deadQubits, *dropCalib, *faultSeed, *metricsOut, *rev, tf); err != nil {
		fmt.Fprintln(os.Stderr, "qaoac:", err)
		os.Exit(1)
	}
}

// traceFlags bundles the tracing/explainability outputs of one run.
type traceFlags struct {
	Chrome  string
	JSONL   string
	Strip   bool
	Explain bool
	DOT     string
}

func (tf traceFlags) enabled() bool {
	return tf.Chrome != "" || tf.JSONL != "" || tf.Explain || tf.DOT != ""
}

// write exports the recorded events to every requested sink.
func (tf traceFlags) write(events []qaoac.TraceEvent) error {
	if tf.Chrome != "" {
		if err := writeTo(tf.Chrome, func(w *os.File) error {
			return qaoac.WriteChromeTrace(w, events)
		}); err != nil {
			return err
		}
		fmt.Printf("trace:         %s (chrome trace-event JSON)\n", tf.Chrome)
	}
	if tf.JSONL != "" {
		if err := writeTo(tf.JSONL, func(w *os.File) error {
			return qaoac.WriteTraceJSONL(w, events, tf.Strip)
		}); err != nil {
			return err
		}
		fmt.Printf("trace:         %s (JSONL, %d events)\n", tf.JSONL, len(events))
	}
	if tf.DOT != "" {
		if err := writeTo(tf.DOT, func(w *os.File) error {
			qaoac.WriteTraceDOT(w, events)
			return nil
		}); err != nil {
			return err
		}
		fmt.Printf("trace:         %s (Graphviz DOT)\n", tf.DOT)
	}
	if tf.Explain {
		fmt.Println()
		qaoac.WriteTraceExplain(os.Stdout, events)
	}
	return nil
}

// writeTo creates path (and missing parent directories) and runs fn on it,
// wrapping every failure with the path.
func writeTo(path string, fn func(*os.File) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

func run(deviceName, deviceFile, graphKind, graphFile string, nodes, degree int, prob float64, method string, levels, packing int, seed int64, print, native, draw bool,
	timeout time.Duration, resilient bool, deadQubits int, dropCalib float64, faultSeed int64, metricsOut, rev string, tf traceFlags) error {
	var dev *qaoac.Device
	var err error
	if deviceFile != "" {
		data, rerr := os.ReadFile(deviceFile)
		if rerr != nil {
			return rerr
		}
		dev, err = qaoac.DeviceFromJSON(data)
	} else {
		dev, err = pickDevice(deviceName)
	}
	if err != nil {
		return err
	}
	if deadQubits > 0 || dropCalib > 0 {
		spec := qaoac.FaultSpec{Seed: faultSeed, DeadQubits: deadQubits, DeleteCalibFrac: dropCalib}
		degraded, rep, ferr := spec.Apply(dev)
		if ferr != nil {
			return ferr
		}
		fmt.Println(rep)
		dev = degraded
	}
	rng := rand.New(rand.NewSource(seed))

	var col *qaoac.Collector
	if metricsOut != "" {
		col = qaoac.NewCollector()
		qaoac.SetObservability(col)
		defer qaoac.SetObservability(nil)
		dev.Obs = col
	}

	var g *qaoac.Graph
	switch {
	case graphFile != "":
		data, rerr := os.ReadFile(graphFile)
		if rerr != nil {
			return rerr
		}
		g, err = qaoac.ParseEdgeList(string(data))
		if err != nil {
			return err
		}
	case graphKind == "regular":
		g, err = qaoac.RandomRegular(nodes, degree, rng)
		if err != nil {
			return err
		}
	case graphKind == "er":
		g = qaoac.ErdosRenyi(nodes, prob, rng)
	default:
		return fmt.Errorf("unknown graph family %q", graphKind)
	}

	preset, err := pickPreset(method)
	if err != nil {
		return err
	}

	params := qaoac.Params{Gamma: make([]float64, levels), Beta: make([]float64, levels)}
	for l := 0; l < levels; l++ {
		params.Gamma[l] = 0.8 / float64(l+1)
		params.Beta[l] = 0.4 / float64(l+1)
	}

	problem := &qaoac.Problem{G: g, MaxCut: 1}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var tr *qaoac.Tracer
	if tf.enabled() {
		tr = qaoac.NewTracer()
	}
	var res *qaoac.CompileResult
	if resilient {
		res, err = qaoac.CompileResilient(ctx, problem, params, dev, preset,
			qaoac.FallbackOptions{Seed: seed, PackingLimit: packing, Obs: col, Trace: tr})
	} else {
		opts := preset.Options(rng)
		opts.PackingLimit = packing
		opts.Obs = col
		opts.Trace = tr
		res, err = qaoac.CompileContext(ctx, problem, params, dev, opts)
	}
	if err != nil {
		return err
	}

	fmt.Printf("device:        %s (%d qubits, %d couplers)\n", dev.Name, dev.NQubits(), dev.Coupling.M())
	fmt.Printf("problem:       %s n=%d m=%d, p=%d\n", graphKind, g.N(), g.M(), levels)
	fmt.Printf("method:        %s (packing limit %d)\n", preset, packing)
	if fb := res.Fallback; fb != nil {
		if fb.Degraded {
			fmt.Printf("degraded:      %s -> %s after %d failed attempts (%s)\n", fb.Requested, fb.Effective, len(fb.Attempts), fb.Reason)
		} else if len(fb.Attempts) > 0 {
			fmt.Printf("retries:       %s succeeded after %d failed attempts\n", fb.Effective, len(fb.Attempts))
		}
	}
	fmt.Printf("initial map:   %s\n", res.Initial)
	fmt.Printf("final map:     %s\n", res.Final)
	fmt.Printf("swaps added:   %d\n", res.SwapCount)
	fmt.Printf("native depth:  %d\n", res.Depth)
	fmt.Printf("native gates:  %d\n", res.GateCount)
	fmt.Printf("compile time:  %s\n", res.CompileTime)
	if dev.Calib != nil {
		fmt.Printf("success prob:  %.6f\n", dev.SuccessProbability(res.Native))
	}
	fmt.Printf("exec time:     %.0f ns (IBM timing model)\n", res.Circuit.ExecutionTime(qaoac.IBMDurations()))
	if print {
		c := res.Circuit
		if native {
			c = res.Native
		}
		fmt.Println()
		fmt.Print(c.String())
	}
	if draw {
		fmt.Println()
		fmt.Print(qaoac.DrawCircuit(res.Circuit))
	}
	if metricsOut != "" {
		rep := qaoac.NewBenchReport("qaoac", qaoac.RevisionFromEnv(rev), col)
		rec := qaoac.BenchRecord{
			Name:       "qaoac/" + preset.String(),
			Instances:  1,
			CompileSec: res.CompileTime.Seconds(),
			MapSec:     res.MapTime.Seconds(),
			OrderSec:   res.OrderTime.Seconds(),
			RouteSec:   res.RouteTime.Seconds(),
			Swaps:      float64(res.SwapCount),
			Depth:      float64(res.Depth),
			Gates:      float64(res.GateCount),
		}
		if dev.Calib != nil {
			rec.SuccessProb = dev.SuccessProbability(res.Native)
		}
		rep.AddBenchmark(rec)
		if err := rep.WriteFile(metricsOut); err != nil {
			return err
		}
		fmt.Printf("metrics:       %s\n", metricsOut)
	}
	if tf.enabled() {
		if err := tf.write(tr.Events()); err != nil {
			return err
		}
	}
	return nil
}

func pickDevice(name string) (*qaoac.Device, error) {
	switch {
	case name == "tokyo":
		return qaoac.Tokyo20(), nil
	case name == "melbourne":
		return qaoac.Melbourne15(), nil
	case name == "falcon27":
		return qaoac.Falcon27(), nil
	case name == "grid6x6":
		return qaoac.GridDevice(6, 6), nil
	case strings.HasPrefix(name, "linear"):
		var n int
		if _, err := fmt.Sscanf(name, "linear%d", &n); err != nil {
			return nil, fmt.Errorf("bad device %q (want e.g. linear8)", name)
		}
		return qaoac.LinearDevice(n), nil
	case strings.HasPrefix(name, "ring"):
		var n int
		if _, err := fmt.Sscanf(name, "ring%d", &n); err != nil {
			return nil, fmt.Errorf("bad device %q (want e.g. ring8)", name)
		}
		return qaoac.RingDevice(n), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}

func pickPreset(method string) (qaoac.Preset, error) {
	for _, p := range qaoac.Presets {
		if strings.EqualFold(p.String(), method) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q", method)
}
