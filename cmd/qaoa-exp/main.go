// Command qaoa-exp regenerates the paper's evaluation tables and figures
// (Figs. 7–12 plus the §VI comparison) and prints them as aligned text
// tables — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	qaoa-exp                 # run everything at full paper scale
//	qaoa-exp -fig 9          # one figure
//	qaoa-exp -scale 0.2      # shrink instance counts (quick look)
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/qaoac"
)

// sweepProgress tracks which figure is running and how many jobs finished,
// for the -listen /healthz endpoint. Written by the job loop, read by the
// HTTP handler.
var sweepProgress struct {
	mu    sync.Mutex
	phase string
	done  int
	total int
}

func setProgress(phase string, done, total int) {
	sweepProgress.mu.Lock()
	sweepProgress.phase, sweepProgress.done, sweepProgress.total = phase, done, total
	sweepProgress.mu.Unlock()
}

func readProgress() qaoac.ObsProgress {
	sweepProgress.mu.Lock()
	defer sweepProgress.mu.Unlock()
	return qaoac.ObsProgress{Phase: sweepProgress.phase, Done: sweepProgress.done, Total: sweepProgress.total}
}

func main() {
	var (
		format  = flag.String("format", "text", "output format: text | md | csv")
		fig     = flag.String("fig", "all", "which figure to regenerate: 7 | 8 | 9 | 10 | 11a | 11b | 12 | disc | ext-levels | ext-mappers | ext-crosstalk | ext-optimize | all")
		scale   = flag.Float64("scale", 1.0, "multiply instance counts by this factor (min 1 instance)")
		metrics = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the run to this path")
		rev     = flag.String("rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
		listen  = flag.String("listen", "", "serve live Prometheus metrics, /healthz sweep progress and pprof on this address (e.g. :8080) while the sweep runs")
		logOut  = flag.String("log", "", "write one JSON wide-event summary line per figure to this file (\"-\" for stderr, empty disables)")
	)
	flag.Parse()

	logW, closeLog, err := qaoac.OpenLogWriter(*logOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qaoa-exp:", err)
		os.Exit(1)
	}
	defer closeLog()
	logger := qaoac.NewWideLogger(logW)

	var col *qaoac.Collector
	if *metrics != "" || *listen != "" {
		col = qaoac.NewCollector()
		qaoac.SetObservability(col)
		defer qaoac.SetObservability(nil)
	}
	if *listen != "" {
		obs, err := qaoac.ServeObservability(*listen, col, readProgress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qaoa-exp:", err)
			os.Exit(1)
		}
		// The endpoint boots not-ready; the sweep is about to start, so flip
		// readiness now. On SIGINT/SIGTERM and on normal exit the server
		// drains gracefully (readiness goes false first) so in-flight
		// /metrics scrapes finish instead of being cut mid-body.
		obs.SetReady(true, "")
		defer drainObs(obs)
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigCh
			fmt.Fprintf(os.Stderr, "qaoa-exp: %s: draining metrics endpoint\n", sig)
			drainObs(obs)
			os.Exit(1)
		}()
		fmt.Fprintf(os.Stderr, "qaoa-exp: serving metrics on http://%s/metrics\n", obs.Addr())
	}
	if err := run(context.Background(), *fig, *scale, *format, logger); err != nil {
		fmt.Fprintln(os.Stderr, "qaoa-exp:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		rep := qaoac.NewBenchReport("qaoa-exp", qaoac.RevisionFromEnv(*rev), col)
		if err := rep.WriteFile(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "qaoa-exp:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s (%d counters, %d spans)\n", *metrics, len(rep.Counters), len(rep.Spans))
	}
}

// drainObs gracefully stops the observability endpoint, bounding the drain
// so a stuck scraper cannot hold the process open.
func drainObs(obs *qaoac.ObsServer) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	obs.Shutdown(ctx)
}

func scaleN(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}

func run(ctx context.Context, fig string, scale float64, format string, logger *slog.Logger) error {
	type job struct {
		name string
		run  func() ([]*qaoac.ExpTable, error)
	}
	jobs := []job{
		{"7", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig7()
			cfg.Instances = scaleN(cfg.Instances, scale)
			return qaoac.Fig7(cfg)
		}},
		{"8", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig8()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.Fig8(cfg)
			return wrap(t, err)
		}},
		{"9", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig9()
			cfg.Instances = scaleN(cfg.Instances, scale)
			return qaoac.Fig9(cfg)
		}},
		{"10", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig10()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.Fig10(cfg)
			return wrap(t, err)
		}},
		{"11a", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig11a()
			cfg.InstancesPerPoint = scaleN(cfg.InstancesPerPoint, scale)
			t, err := qaoac.Fig11a(cfg)
			return wrap(t, err)
		}},
		{"11b", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig11b()
			cfg.Instances = scaleN(cfg.Instances, scale)
			cfg.Shots = scaleN(cfg.Shots, scale)
			cfg.Trajectories = scaleN(cfg.Trajectories, scale)
			t, err := qaoac.Fig11b(cfg)
			return wrap(t, err)
		}},
		{"12", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultFig12()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.Fig12(cfg)
			return wrap(t, err)
		}},
		{"disc", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultDiscussion()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.Discussion(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-levels", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtLevels()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtLevels(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-mappers", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtMappers()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtMappers(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-crosstalk", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtCrosstalk()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtCrosstalk(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-optimize", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtOptimize()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtOptimize(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-devices", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtDevices()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtDevices(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-ordering", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtOrdering()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtOrdering(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-mitigation", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtMitigation()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtMitigation(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-workloads", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultExtWorkloads()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.ExtWorkloads(ctx, cfg)
			return wrap(t, err)
		}},
		{"ext-sweep", func() ([]*qaoac.ExpTable, error) {
			cfg := qaoac.DefaultAngleSweep()
			cfg.Instances = scaleN(cfg.Instances, scale)
			t, err := qaoac.AngleSweep(ctx, cfg)
			return wrap(t, err)
		}},
	}

	selected := 0
	for _, j := range jobs {
		if fig == "all" || fig == j.name {
			selected++
		}
	}
	matched := false
	done := 0
	for _, j := range jobs {
		if fig != "all" && fig != j.name {
			continue
		}
		matched = true
		setProgress("fig "+j.name, done, selected)
		start := time.Now()
		tables, err := j.run()
		printFaults(j.name)
		if err != nil {
			return fmt.Errorf("fig %s: %w", j.name, err)
		}
		for _, t := range tables {
			switch format {
			case "md":
				fmt.Println(t.RenderMarkdown())
			case "csv":
				fmt.Println(t.RenderCSV())
			default:
				fmt.Println(t.Render())
			}
		}
		fmt.Printf("(fig %s regenerated in %s)\n\n", j.name, time.Since(start).Round(time.Millisecond))
		done++
		setProgress("fig "+j.name, done, selected)
		// One canonical wide-event line per figure — the same vocabulary the
		// serving and bench binaries emit, so one pipeline parses all four.
		ev := (&obsv.WideEvent{}).
			Str(obsv.FieldPhase, "fig "+j.name).
			Float(obsv.FieldDurationMS, float64(time.Since(start).Microseconds())/1000.0).
			Str(obsv.FieldOutcome, "ok")
		ev.Emit(logger, "figure")
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func wrap(t *qaoac.ExpTable, err error) ([]*qaoac.ExpTable, error) {
	if err != nil {
		return nil, err
	}
	return []*qaoac.ExpTable{t}, nil
}

// printFaults surfaces the structured partial-failure reports a job
// accumulated: sweep points that lost some instance×preset compilations
// still contribute their surviving samples, and this is where the loss is
// accounted for instead of silently shrinking the sample counts.
func printFaults(fig string) {
	reports := qaoac.DrainFaultReports()
	if len(reports) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "qaoa-exp: fig %s completed with partial failures:\n", fig)
	for _, r := range reports {
		fmt.Fprintln(os.Stderr, "  "+r.Summary())
	}
}
