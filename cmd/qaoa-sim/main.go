// Command qaoa-sim runs the full quantum-classical QAOA optimization loop
// on a small MaxCut instance using the state-vector simulator: it finds
// optimal p=1 angles, compiles the circuit for a device, and reports ideal
// vs noisy approximation ratios and the resulting ARG.
//
// Usage:
//
//	qaoa-sim -nodes 10 -degree 3 -method IC -shots 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/qaoac"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 10, "problem graph size (≤ 15 for melbourne)")
		degree  = flag.Int("degree", 3, "edges per node")
		method  = flag.String("method", "IC", "compilation method: NAIVE | GreedyV | QAIM | IP | IC | VIC")
		shots   = flag.Int("shots", 8192, "measurement shots")
		traj    = flag.Int("traj", 32, "noise trajectories")
		seed    = flag.Int64("seed", 1, "random seed")
		mit     = flag.Bool("mitigate", false, "also report ARG after readout-error mitigation")
		timeout = flag.Duration("timeout", 0, "abort compilation after this long (0 = no deadline)")
		metrics = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the run to this path")
		rev     = flag.String("rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
	)
	flag.Parse()
	if err := run(*nodes, *degree, *method, *shots, *traj, *seed, *mit, *timeout, *metrics, *rev); err != nil {
		fmt.Fprintln(os.Stderr, "qaoa-sim:", err)
		os.Exit(1)
	}
}

func run(nodes, degree int, method string, shots, traj int, seed int64, mitigate bool, timeout time.Duration, metricsOut, rev string) error {
	var col *qaoac.Collector
	if metricsOut != "" {
		col = qaoac.NewCollector()
		qaoac.SetObservability(col)
		defer qaoac.SetObservability(nil)
	}
	rng := rand.New(rand.NewSource(seed))
	g, err := qaoac.RandomRegular(nodes, degree, rng)
	if err != nil {
		return err
	}
	prob, err := qaoac.NewMaxCut(g)
	if err != nil {
		return err
	}
	fmt.Printf("problem:   %d-node %d-regular MaxCut, optimum = %d\n", nodes, degree, prob.MaxCut)

	gamma, beta, expC, err := qaoac.OptimizeP1(g)
	if err != nil {
		return err
	}
	fmt.Printf("optimum angles: γ = %.4f, β = %.4f  (⟨C⟩ = %.4f, ratio %.4f)\n",
		gamma, beta, expC, expC/float64(prob.MaxCut))

	var preset qaoac.Preset
	found := false
	for _, p := range qaoac.Presets {
		if strings.EqualFold(p.String(), method) {
			preset, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown method %q", method)
	}

	dev := qaoac.Melbourne15()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	copts := preset.Options(rng)
	copts.Obs = col
	dev.Obs = col
	res, err := qaoac.CompileContext(ctx, prob, qaoac.P1Params(gamma, beta), dev, copts)
	if err != nil {
		return err
	}
	fmt.Printf("compiled (%s): depth %d, gates %d, swaps %d, success prob %.5f\n",
		preset, res.Depth, res.GateCount, res.SwapCount, dev.SuccessProbability(res.Native))

	extract := func(ys []uint64) []uint64 {
		xs := make([]uint64, len(ys))
		for i, y := range ys {
			xs[i] = res.ExtractLogical(y)
		}
		return xs
	}
	ideal := extract(qaoac.SampleIdeal(res.Circuit, shots, rng))
	r0, err := qaoac.ApproximationRatio(prob, ideal)
	if err != nil {
		return err
	}
	noisyPhysical := qaoac.SampleNoisy(res.Circuit, qaoac.NoiseFromDevice(dev), shots, traj, rng)
	noisy := extract(noisyPhysical)
	rh, err := qaoac.ApproximationRatio(prob, noisy)
	if err != nil {
		return err
	}
	best := 0.0
	for _, x := range ideal {
		if c := prob.Cost(x); c > best {
			best = c
		}
	}
	argPct := qaoac.ARG(r0, rh)
	fmt.Printf("ideal approximation ratio:  r0 = %.4f (best sampled cut %d/%d)\n", r0, int(best), prob.MaxCut)
	fmt.Printf("noisy approximation ratio:  rh = %.4f\n", rh)
	fmt.Printf("approximation ratio gap:    ARG = %.2f%%\n", argPct)

	if mitigate {
		// Mitigate the same noisy sample set so the comparison is paired.
		counts := qaoac.SampleHistogram(noisyPhysical)
		quasi, err := qaoac.MitigateReadout(counts, dev.NQubits(), dev.Calib.ReadoutError)
		if err != nil {
			return err
		}
		meanCut := qaoac.ExpectationFromDistribution(quasi, func(y uint64) float64 {
			return prob.Cost(res.ExtractLogical(y))
		})
		rm := meanCut / float64(prob.MaxCut)
		fmt.Printf("mitigated ratio:            rm = %.4f  (ARG %.2f%%)\n", rm, qaoac.ARG(r0, rm))
	}
	if metricsOut != "" {
		rep := qaoac.NewBenchReport("qaoa-sim", qaoac.RevisionFromEnv(rev), col)
		rep.AddBenchmark(qaoac.BenchRecord{
			Name:        "qaoa-sim/" + preset.String(),
			Instances:   1,
			CompileSec:  res.CompileTime.Seconds(),
			MapSec:      res.MapTime.Seconds(),
			OrderSec:    res.OrderTime.Seconds(),
			RouteSec:    res.RouteTime.Seconds(),
			Swaps:       float64(res.SwapCount),
			Depth:       float64(res.Depth),
			Gates:       float64(res.GateCount),
			ARGPct:      argPct,
			SuccessProb: dev.SuccessProbability(res.Native),
		})
		if err := rep.WriteFile(metricsOut); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", metricsOut)
	}
	return nil
}
