// Command qaoa-qasm compiles a QAOA-MaxCut instance and writes the
// hardware-compliant circuit as OpenQASM 2.0, for interchange with other
// toolchains (qiskit, tket). It can also round-trip: -check re-imports the
// emitted program and verifies it gate for gate.
//
// Usage:
//
//	qaoa-qasm -device melbourne -nodes 12 -degree 3 -method VIC -o circuit.qasm
//	qaoa-qasm -nodes 8 -method IC -native -check
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/qaoac"
)

func main() {
	var (
		deviceName = flag.String("device", "melbourne", "target device: tokyo | melbourne | grid6x6")
		nodes      = flag.Int("nodes", 12, "problem graph size")
		degree     = flag.Int("degree", 3, "edges per node (regular graph workload)")
		method     = flag.String("method", "IC", "compilation method")
		native     = flag.Bool("native", false, "emit the {u1,u2,u3,cx} decomposition")
		check      = flag.Bool("check", false, "re-import the emitted QASM and verify")
		out        = flag.String("o", "", "output file (default stdout)")
		seed       = flag.Int64("seed", 1, "random seed")
		timeout    = flag.Duration("timeout", 0, "abort compilation after this long (0 = no deadline)")
		metrics    = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the compilation to this path")
		rev        = flag.String("rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
	)
	flag.Parse()
	if err := run(*deviceName, *nodes, *degree, *method, *native, *check, *out, *seed, *timeout, *metrics, *rev); err != nil {
		fmt.Fprintln(os.Stderr, "qaoa-qasm:", err)
		os.Exit(1)
	}
}

func run(deviceName string, nodes, degree int, method string, native, check bool, out string, seed int64, timeout time.Duration, metricsOut, rev string) error {
	var dev *qaoac.Device
	switch deviceName {
	case "tokyo":
		dev = qaoac.Tokyo20()
	case "melbourne":
		dev = qaoac.Melbourne15()
	case "grid6x6":
		dev = qaoac.GridDevice(6, 6)
	default:
		return fmt.Errorf("unknown device %q", deviceName)
	}

	rng := rand.New(rand.NewSource(seed))
	g, err := qaoac.RandomRegular(nodes, degree, rng)
	if err != nil {
		return err
	}
	var preset qaoac.Preset
	found := false
	for _, p := range qaoac.Presets {
		if strings.EqualFold(p.String(), method) {
			preset, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown method %q", method)
	}
	opts := preset.Options(rng)
	opts.Measure = true
	var col *qaoac.Collector
	if metricsOut != "" {
		col = qaoac.NewCollector()
		opts.Obs = col
		dev.Obs = col
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := qaoac.CompileContext(ctx, &qaoac.Problem{G: g, MaxCut: 1}, qaoac.P1Params(0.8, 0.35), dev, opts)
	if err != nil {
		return err
	}
	c := res.Circuit
	if native {
		c = res.Native
	}
	src := qaoac.ExportQASM(c)

	if check {
		back, err := qaoac.ImportQASM(src)
		if err != nil {
			return fmt.Errorf("round-trip import failed: %w", err)
		}
		if back.Len() != c.Len() || back.NQubits != c.NQubits {
			return fmt.Errorf("round-trip mismatch: %d/%d gates, %d/%d qubits",
				back.Len(), c.Len(), back.NQubits, c.NQubits)
		}
		fmt.Fprintf(os.Stderr, "round-trip OK: %d gates on %d qubits\n", c.Len(), c.NQubits)
	}

	if metricsOut != "" {
		rep := qaoac.NewBenchReport("qaoa-qasm", qaoac.RevisionFromEnv(rev), col)
		rep.AddBenchmark(qaoac.BenchRecord{
			Name:       "qaoa-qasm/" + preset.String(),
			Instances:  1,
			CompileSec: res.CompileTime.Seconds(),
			MapSec:     res.MapTime.Seconds(),
			OrderSec:   res.OrderTime.Seconds(),
			RouteSec:   res.RouteTime.Seconds(),
			Swaps:      float64(res.SwapCount),
			Depth:      float64(res.Depth),
			Gates:      float64(res.GateCount),
		})
		if err := rep.WriteFile(metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", metricsOut)
	}

	if out == "" {
		fmt.Print(src)
		return nil
	}
	return os.WriteFile(out, []byte(src), 0o644)
}
