// Command qaoad is the QAOA compilation-as-a-service daemon: it serves the
// compiler behind POST /v1/compile with a compiled-circuit cache,
// singleflight deduplication, admission control with load shedding,
// per-preset circuit breakers, graceful degradation down the VIC→IC→IP→
// NAIVE ladder and graceful drain on SIGINT/SIGTERM. Observability rides
// along on the same listener: Prometheus /metrics (with latency histograms
// and SLO burn-rate gauges), /healthz liveness, /readyz readiness,
// /debug/pprof and the /debug/requests live request inspector; -log emits
// one canonical JSON line per request.
//
// Usage:
//
//	qaoad -listen :8080
//	curl -s localhost:8080/v1/compile -d '{"device_name":"tokyo","circuit":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]},"config":{"policy":"IC"}}'
//
// See README.md ("Compilation as a service") for the full API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/qaoac"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
		workers      = flag.Int("workers", 4, "maximum concurrent compile flights")
		queue        = flag.Int("queue", 0, "maximum flights waiting for a worker before shedding (default 4×workers)")
		cacheSize    = flag.Int("cache", 1024, "compiled-circuit LRU cache capacity")
		deadline     = flag.Duration("default-deadline", 30*time.Second, "client wait budget when a request carries no deadline_ms")
		maxDeadline  = flag.Duration("max-deadline", 2*time.Minute, "cap on client-supplied deadlines")
		budget       = flag.Duration("compile-budget", time.Minute, "server-side wall-clock bound per compile flight")
		retries      = flag.Int("retries", 1, "retries per ladder rung on transient compile faults")
		backoff      = flag.Duration("backoff", 5*time.Millisecond, "base backoff between retries")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight compiles")
		warmup       = flag.Bool("warmup", true, "compile a warm-up circuit on every registered device before reporting ready")
		metricsOut   = flag.String("metrics-out", "", "write a BENCH_*.json metrics report of the serve session to this path on exit")
		rev          = flag.String("rev", "", "revision stamped into the metrics report (default $GITHUB_SHA, then \"dev\")")
		logOut       = flag.String("log", "", "write one canonical JSON log line per request to this file (\"-\" for stderr, empty disables)")
		recent       = flag.Int("recent-requests", 64, "finished requests kept by the /debug/requests inspector ring")
		traceReqs    = flag.Bool("trace-requests", false, "attach a decision-level trace to every compile flight and expose it on /debug/requests (debugging aid, expensive)")
	)
	flag.Parse()
	if err := run(*listen, *workers, *queue, *cacheSize, *deadline, *maxDeadline, *budget,
		*retries, *backoff, *drainTimeout, *warmup, *metricsOut, *rev, *logOut, *recent, *traceReqs); err != nil {
		fmt.Fprintln(os.Stderr, "qaoad:", err)
		os.Exit(1)
	}
}

func run(listen string, workers, queue, cacheSize int, deadline, maxDeadline, budget time.Duration,
	retries int, backoff, drainTimeout time.Duration, warmup bool, metricsOut, rev, logOut string,
	recent int, traceReqs bool) error {
	col := obsv.New()

	logW, closeLog, err := qaoac.OpenLogWriter(logOut)
	if err != nil {
		return err
	}
	defer closeLog()

	srv := serve.New(serve.Config{
		Workers:         workers,
		Queue:           queue,
		CacheSize:       cacheSize,
		DefaultDeadline: deadline,
		MaxDeadline:     maxDeadline,
		CompileBudget:   budget,
		Retries:         retries,
		Backoff:         backoff,
		Obs:             col,
		Log:             obsv.NewLogger(logW),
		RecentRequests:  recent,
		TraceRequests:   traceReqs,
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", listen, err)
	}
	hs := serve.NewHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "qaoad: listening on http://%s (not ready: warming up)\n", ln.Addr())

	// Warm-up: one small compilation per registered device, so the first
	// client request never pays for a broken device configuration — a
	// failing warm-up keeps /readyz at 503 and exits. Readiness flips only
	// after this succeeds.
	if warmup {
		if err := warmUp(); err != nil {
			hs.Close()
			return fmt.Errorf("warm-up: %w", err)
		}
	}
	srv.MarkReady()
	fmt.Fprintf(os.Stderr, "qaoad: ready\n")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}
	stop()

	// Graceful shutdown: readiness flips to "draining" (so balancers stop
	// routing), new compiles get 503, in-flight flights finish under the
	// drain deadline, then the HTTP server closes idle connections.
	fmt.Fprintf(os.Stderr, "qaoad: draining (timeout %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	hs.Shutdown(dctx)
	srv.Close()
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "qaoad:", drainErr)
	}

	if metricsOut != "" {
		rep := obsv.NewReport("qaoad", qaoac.RevisionFromEnv(rev), col)
		if err := rep.WriteFile(metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "qaoad: metrics written to %s (%d counters)\n", metricsOut, len(rep.Counters))
	}
	return nil
}

// warmUp compiles a 4-node ring on the smallest standard device — enough
// to touch every pass once and fault early on misconfiguration.
func warmUp() error {
	spec := compile.Spec{N: 4, Levels: []compile.LevelSpec{{
		ZZ: []compile.ZZTerm{
			{U: 0, V: 1, Theta: -0.8}, {U: 1, V: 2, Theta: -0.8},
			{U: 2, V: 3, Theta: -0.8}, {U: 0, V: 3, Theta: -0.8},
		},
		MixerBeta: 0.4,
	}}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := compile.CompileSpecResilient(ctx, spec, device.Melbourne15(), compile.PresetIC, compile.FallbackOptions{Seed: 1})
	return err
}
