// Command qaoad-load is the deterministic load generator for qaoad. It
// drives four phases against a server — warm (fill the compiled-circuit
// cache), cached (sustained throughput over the warm keys, measuring p50/
// p99 latency and req/s), sweep (an angle-tuning client: the same few
// structures with ever-different angles, which must be served by binding
// cached routed skeletons rather than recompiling), and overload (a
// deliberate burst of distinct uncached compiles that must shed cleanly
// with 429s, never 5xx) — and writes a schema-versioned BENCH record of
// the results.
//
// The workload is a pure function of -seed: the same circuits in the same
// order every run. Shed accounting is verified exactly: the client-observed
// 429 count must equal the server's serve/shed counter delta over the
// overload phase, proving no response path is double- or under-counted.
//
// By default it boots an in-process qaoad server on a loopback port;
// -addr points it at an externally running daemon instead.
//
// Usage:
//
//	qaoad-load -metrics-out BENCH_serve.json -min-throughput 500
//	qaoad-load -addr 127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/qaoac"
)

func main() {
	var (
		addr      = flag.String("addr", "", "address of a running qaoad (default: boot an in-process server)")
		devName   = flag.String("device", "tokyo", "registered device the workload compiles against")
		warmN     = flag.Int("warm", 24, "distinct circuits compiled during the warm phase (the cached working set)")
		requests  = flag.Int("requests", 4000, "total requests of the cached phase")
		clients   = flag.Int("clients", 16, "concurrent clients of the cached phase")
		overN     = flag.Int("overload", 192, "distinct uncached circuits of the overload burst")
		overCli   = flag.Int("overload-clients", 48, "concurrent clients of the overload burst")
		sweepN    = flag.Int("sweep", 96, "angle-sweep phase: total distinct-angle requests (0 disables the phase)")
		sweepG    = flag.Int("sweep-graphs", 4, "angle-sweep phase: distinct graph structures the angle points spread over")
		seed      = flag.Int64("seed", 7, "workload seed: circuits and schedules are a pure function of it")
		minRPS    = flag.Float64("min-throughput", 0, "fail unless the cached phase sustains at least this many req/s (0 = no gate)")
		minShed   = flag.Int("min-shed", 0, "fail unless the overload phase sheds at least this many requests (0 = no gate)")
		minSkel   = flag.Float64("min-skeleton-hit-rate", 0, "fail unless the sweep phase's skeleton-tier hit rate reaches this fraction (0 = no gate)")
		injectLat = flag.Duration("inject-latency", 0, "in-process server: inject this much latency into every compile pass (makes overload shedding reproducible on small machines)")
		workers   = flag.Int("workers", 4, "in-process server: maximum concurrent compile flights")
		queue     = flag.Int("queue", 0, "in-process server: admission queue bound (default 4×workers)")
		out       = flag.String("metrics-out", "", "write the BENCH_*.json record to this path")
		rev       = flag.String("rev", "", "revision stamped into the record (default $GITHUB_SHA, then \"dev\")")
		logOut    = flag.String("log", "", "write one JSON wide-event summary line per phase to this file (\"-\" for stderr, empty disables)")
		availBurn = flag.Float64("max-availability-burn", 0, "fail when the service-wide SLO availability burn rate exceeds this after the run (negative disables the gate)")
	)
	flag.Parse()
	if err := run(*addr, *devName, *warmN, *requests, *clients, *overN, *overCli, *sweepN, *sweepG, *seed, *minRPS,
		*minShed, *minSkel, *injectLat, *workers, *queue, *out, *rev, *logOut, *availBurn); err != nil {
		fmt.Fprintln(os.Stderr, "qaoad-load:", err)
		os.Exit(1)
	}
}

func run(addr, devName string, warmN, requests, clients, overN, overCli, sweepN, sweepG int, seed int64, minRPS float64,
	minShed int, minSkel float64, injectLat time.Duration, workers, queue int, out, rev, logOut string, availBurn float64) error {
	col := obsv.New()

	logW, closeLog, err := qaoac.OpenLogWriter(logOut)
	if err != nil {
		return err
	}
	defer closeLog()
	logger := qaoac.NewWideLogger(logW)
	if addr == "" {
		// The optional injected pass latency models real-hardware compile
		// times on machines too small for CPU-bound compiles to overlap
		// (sleeps yield the CPU, so concurrent requests genuinely pile up
		// at admission and the overload phase sheds reproducibly).
		var hook compile.Hook
		if injectLat > 0 {
			hook = func(string) error { time.Sleep(injectLat); return nil }
		}
		srv := serve.New(serve.Config{Workers: workers, Queue: queue, Obs: col, Hook: hook})
		srv.MarkReady()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := serve.NewHTTPServer(srv.Handler())
		//lint:allow leakcheck: Serve returns when the deferred Close shuts the listener at the end of the run
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Drain(ctx)
			hs.Shutdown(ctx)
			srv.Close()
		}()
		addr = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "qaoad-load: in-process server on %s (workers=%d)\n", addr, workers)
	}
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * (clients + overCli),
		MaxIdleConnsPerHost: 2 * (clients + overCli),
	}}

	rng := rand.New(rand.NewSource(seed))
	// Warm working set: small p=1 IC circuits (the cached-throughput
	// subject). Overload burst: large p=12 VIC circuits — slow enough that
	// the worker pool and queue demonstrably fill and the rest shed.
	warm := genCircuits(rng, warmN, devName, "IC", 6, 14, 1)
	over := genCircuits(rng, overN, devName, "VIC", 16, 20, 12)

	// Phase 1: warm. Every circuit compiles once; the cache now holds the
	// working set the cached phase replays. Client-side latencies of this
	// phase are the uncached sample the server-histogram cross-check uses.
	_, uncachedBefore, err := scrapeHistogram(client, base, "qaoa_serve_request_uncached_ms")
	if err != nil {
		return err
	}
	warmLat := make([]float64, 0, warmN)
	startWarm := time.Now()
	for i, body := range warm {
		t0 := time.Now()
		st, _, err := post(client, base, body)
		d := time.Since(t0)
		if err != nil {
			return fmt.Errorf("warm %d: %w", i, err)
		}
		if st != http.StatusOK {
			return fmt.Errorf("warm %d: status %d", i, st)
		}
		warmLat = append(warmLat, float64(d.Microseconds())/1000.0)
	}
	warmWall := time.Since(startWarm)
	sort.Float64s(warmLat)
	warmP50, warmP99 := pct(warmLat, 0.50), pct(warmLat, 0.99)
	uncachedHist, err := scrapeHistogramDelta(client, base, "qaoa_serve_request_uncached_ms", uncachedBefore)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qaoad-load: warm done (%d circuits, p50 %.2fms p99 %.2fms)\n", warmN, warmP50, warmP99)

	// Phase 2: cached throughput. Each client replays the warm working set
	// round-robin from its own offset; every response must be a cache hit.
	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, requests)
		bad       int
		firstErr  error
	)
	_, cachedBefore, err := scrapeHistogram(client, base, "qaoa_serve_request_cached_ms")
	if err != nil {
		return err
	}
	perClient := requests / clients
	startCached := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := warm[(c+i)%len(warm)]
				t0 := time.Now()
				st, _, err := post(client, base, body)
				d := time.Since(t0)
				mu.Lock()
				if err != nil || st != http.StatusOK {
					bad++
					if firstErr == nil {
						firstErr = fmt.Errorf("cached client %d req %d: status %d err %v", c, i, st, err)
					}
				} else {
					latencies = append(latencies, float64(d.Microseconds())/1000.0)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	cachedWall := time.Since(startCached)
	if bad > 0 {
		return fmt.Errorf("cached phase: %d bad responses (first: %v)", bad, firstErr)
	}
	sort.Float64s(latencies)
	rps := float64(len(latencies)) / cachedWall.Seconds()
	p50, p99 := pct(latencies, 0.50), pct(latencies, 0.99)
	cachedHist, err := scrapeHistogramDelta(client, base, "qaoa_serve_request_cached_ms", cachedBefore)
	if err != nil {
		return err
	}
	fmt.Printf("cached:   %d req in %s = %.0f req/s, p50 %.2fms p99 %.2fms\n",
		len(latencies), cachedWall.Round(time.Millisecond), rps, p50, p99)

	// Cross-check the two latency vantage points: the server's histogram
	// quantiles must agree with the client-observed percentiles within one
	// histogram bucket (the histogram's whole resolution). A larger gap
	// means a response path records into the wrong histogram or not at all.
	cachedSrvP50, cachedSrvP99 := cachedHist.Quantile(0.50), cachedHist.Quantile(0.99)
	warmSrvP50, warmSrvP99 := uncachedHist.Quantile(0.50), uncachedHist.Quantile(0.99)
	fmt.Printf("server:   cached p50 %.2fms p99 %.2fms, uncached p50 %.2fms p99 %.2fms\n",
		cachedSrvP50, cachedSrvP99, warmSrvP50, warmSrvP99)
	checks := []struct {
		name           string
		hist           obsv.HistogramStat
		client, server float64
	}{
		{"cached p50", cachedHist, p50, cachedSrvP50},
		{"cached p99", cachedHist, p99, cachedSrvP99},
		{"uncached p50", uncachedHist, warmP50, warmSrvP50},
		{"uncached p99", uncachedHist, warmP99, warmSrvP99},
	}
	// The client vantage adds connection and scheduling overhead the server
	// never sees — cached loopback requests finish server-side in tens of
	// microseconds while the client pays milliseconds of transport and
	// local queuing, spanning many fine log-linear buckets. Below
	// crossCheckSlackMS of absolute difference that overhead dominates the
	// signal, so only larger gaps are held to the one-bucket rule; the gate
	// bites on compile-dominated latencies (the uncached phase) where a
	// misrecorded histogram would show up as tens of milliseconds of drift.
	const crossCheckSlackMS = 10.0
	for _, c := range checks {
		if c.hist.Count == 0 {
			return fmt.Errorf("server histogram for %s recorded no observations over the phase", c.name)
		}
		if math.Abs(c.client-c.server) <= crossCheckSlackMS {
			continue
		}
		ci, si := c.hist.BucketIndex(c.client), c.hist.BucketIndex(c.server)
		if diff := ci - si; diff < -1 || diff > 1 {
			return fmt.Errorf("%s: client %.2fms (bucket %d) and server %.2fms (bucket %d) disagree by more than one bucket",
				c.name, c.client, ci, c.server, si)
		}
	}

	phaseEvent(logger, "warm", warmN, float64(warmN)/warmWall.Seconds(), warmP50, warmP99)
	phaseEvent(logger, "cached", len(latencies), rps, p50, p99)

	// Phase 3: angle sweep. The same few structures with ever-different
	// angles — an angle-tuning client's traffic. The first request per
	// structure pays a routing pass; every later one must be served from
	// the skeleton tier (bind the cached routed skeleton, no routing), the
	// parameterized-compilation win the tier exists for.
	var sweepP50, sweepP99, sweepRPS, skelRate float64
	if sweepN > 0 {
		if sweepG <= 0 {
			sweepG = 1
		}
		if sweepG > sweepN {
			sweepG = sweepN
		}
		sweepDocs := genAngleSweep(rng, sweepG, sweepN, devName, "IC")
		skelBefore, err := scrapeCounter(client, base, "qaoa_serve_skeleton_hits_total")
		if err != nil {
			return err
		}
		sweepLat := make([]float64, 0, sweepN)
		startSweep := time.Now()
		for i, body := range sweepDocs {
			t0 := time.Now()
			st, _, err := post(client, base, body)
			d := time.Since(t0)
			if err != nil {
				return fmt.Errorf("sweep %d: %w", i, err)
			}
			if st != http.StatusOK {
				return fmt.Errorf("sweep %d: status %d", i, st)
			}
			sweepLat = append(sweepLat, float64(d.Microseconds())/1000.0)
		}
		sweepWall := time.Since(startSweep)
		skelAfter, err := scrapeCounter(client, base, "qaoa_serve_skeleton_hits_total")
		if err != nil {
			return err
		}
		// The first touch of each structure routes; every later request is
		// bindable, and the hit rate is measured against exactly those.
		if bindable := sweepN - sweepG; bindable > 0 {
			skelRate = float64(skelAfter-skelBefore) / float64(bindable)
		}
		sort.Float64s(sweepLat)
		sweepRPS = float64(len(sweepLat)) / sweepWall.Seconds()
		sweepP50, sweepP99 = pct(sweepLat, 0.50), pct(sweepLat, 0.99)
		fmt.Printf("sweep:    %d req over %d structures in %s = %.0f req/s, p50 %.2fms p99 %.2fms, skeleton hit rate %.3f\n",
			sweepN, sweepG, sweepWall.Round(time.Millisecond), sweepRPS, sweepP50, sweepP99, skelRate)
		phaseEvent(logger, "sweep", sweepN, sweepRPS, sweepP50, sweepP99)
	}

	// Phase 4: overload. Distinct uncached compiles driven closed-loop:
	// overload-clients workers each march through their slice of the burst
	// back-to-back, so in-flight pressure stays above the server's
	// workers+queue capacity for the whole phase regardless of connection-
	// setup stagger. The well-behaved outcomes are 200 (admitted) and 429
	// (shed); anything 5xx is a robustness bug.
	shedBefore, err := scrapeCounter(client, base, "qaoa_serve_shed_total")
	if err != nil {
		return err
	}
	var ok200, shed429, http5xx, other int
	start := make(chan struct{})
	startOver := time.Now()
	for c := 0; c < overCli; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := c; i < len(over); i += overCli {
				st, _, err := post(client, base, over[i])
				mu.Lock()
				switch {
				case err != nil:
					other++
				case st == http.StatusOK:
					ok200++
				case st == http.StatusTooManyRequests:
					shed429++
				case st >= 500:
					http5xx++
				default:
					other++
				}
				mu.Unlock()
			}
		}(c)
	}
	close(start)
	wg.Wait()
	overWall := time.Since(startOver)
	shedAfter, err := scrapeCounter(client, base, "qaoa_serve_shed_total")
	if err != nil {
		return err
	}
	serverShed := shedAfter - shedBefore
	fmt.Printf("overload: %d req in %s: %d ok, %d shed (429), %d 5xx, %d other; server shed delta %d\n",
		overN, overWall.Round(time.Millisecond), ok200, shed429, http5xx, other, serverShed)

	ev := (&obsv.WideEvent{}).
		Str(obsv.FieldPhase, "overload").
		Int(obsv.FieldRequests, int64(overN)).
		Float(obsv.FieldReqPerSec, float64(overN)/overWall.Seconds()).
		Int(obsv.FieldShed, int64(shed429)).
		Int(obsv.FieldHTTP5xx, int64(http5xx))
	ev.Emit(logger, "load_phase")

	// SLO burn-rate gate: the run must leave the service-wide availability
	// objective unburned — overload shedding is 429s, which by design spend
	// no availability budget, so any burn means a genuine server fault.
	burn, err := scrapeGauge(client, base, `qaoa_slo_availability_burn_rate{preset="all"}`)
	if err != nil {
		return err
	}
	fmt.Printf("slo:      availability burn rate %.4g (gate %.4g)\n", burn, availBurn)

	if out != "" {
		// In-process runs fold the server's own counters (shed, cache hits,
		// singleflight shares) into the record; against a remote server the
		// collector is empty and /metrics is the source of truth.
		rep := obsv.NewReport("qaoad-load", qaoac.RevisionFromEnv(rev), col)
		rep.Benchmarks = []obsv.Benchmark{
			{Name: "serve/warm", Instances: warmN, ReqPerSec: float64(warmN) / warmWall.Seconds(),
				P50MS: warmP50, P99MS: warmP99, ServerP50MS: warmSrvP50, ServerP99MS: warmSrvP99},
			{Name: "serve/cached", Instances: len(latencies), ReqPerSec: rps, P50MS: p50, P99MS: p99,
				ServerP50MS: cachedSrvP50, ServerP99MS: cachedSrvP99},
		}
		if sweepN > 0 {
			rep.Benchmarks = append(rep.Benchmarks, obsv.Benchmark{
				Name: "serve/sweep", Instances: sweepN, ReqPerSec: sweepRPS,
				P50MS: sweepP50, P99MS: sweepP99, SkeletonHitRate: skelRate,
			})
		}
		rep.Benchmarks = append(rep.Benchmarks, obsv.Benchmark{
			Name: "serve/overload", Instances: overN, ReqPerSec: float64(overN) / overWall.Seconds(),
			Shed: int64(shed429), HTTP5xx: int64(http5xx),
		})
		if err := rep.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}

	// Gates, strictest last so every number above is always printed.
	if http5xx > 0 || other > 0 {
		return fmt.Errorf("overload phase returned %d 5xx and %d other failures; want only 200/429", http5xx, other)
	}
	if int64(shed429) != serverShed {
		return fmt.Errorf("shed accounting mismatch: clients saw %d 429s, server counted %d", shed429, serverShed)
	}
	if availBurn >= 0 && burn > availBurn {
		return fmt.Errorf("availability burn rate %.4g exceeds the -max-availability-burn gate %.4g", burn, availBurn)
	}
	if minRPS > 0 && rps < minRPS {
		return fmt.Errorf("cached throughput %.0f req/s below the -min-throughput gate %.0f", rps, minRPS)
	}
	if minShed > 0 && shed429 < minShed {
		return fmt.Errorf("overload phase shed %d requests, below the -min-shed gate %d", shed429, minShed)
	}
	if minSkel > 0 && sweepN > 0 && skelRate < minSkel {
		return fmt.Errorf("sweep skeleton-tier hit rate %.3f below the -min-skeleton-hit-rate gate %.3f", skelRate, minSkel)
	}
	return nil
}

// phaseEvent emits one wide-event summary line for a completed load phase.
func phaseEvent(logger *slog.Logger, phase string, n int, rps, p50, p99 float64) {
	ev := (&obsv.WideEvent{}).
		Str(obsv.FieldPhase, phase).
		Int(obsv.FieldRequests, int64(n)).
		Float(obsv.FieldReqPerSec, rps).
		Float(obsv.FieldP50MS, p50).
		Float(obsv.FieldP99MS, p99)
	ev.Emit(logger, "load_phase")
}

// genCircuits produces count deterministic compile-request bodies: random
// ring-plus-chords MaxCut instances of nmin..nmax nodes at p levels. Every
// document is a pure function of the rng stream.
func genCircuits(rng *rand.Rand, count int, devName, policy string, nmin, nmax, p int) [][]byte {
	docs := make([][]byte, count)
	for i := range docs {
		n := nmin + rng.Intn(nmax-nmin+1)
		seen := make(map[[2]int]bool)
		var edges [][2]int
		for v := 0; v < n; v++ {
			e := [2]int{v, (v + 1) % n}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			seen[e] = true
			edges = append(edges, e)
		}
		for c := 0; c < n/2; c++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		req := serve.CompileRequest{
			DeviceName: devName,
			Circuit:    serve.CircuitDoc{N: n, Edges: edges},
			Config:     serve.ConfigDoc{Policy: policy, P: p, Seed: int64(i + 1), DeadlineMS: 60000},
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err) // a struct we just built cannot fail to marshal
		}
		docs[i] = body
	}
	return docs
}

// genAngleSweep produces the angle-tuning workload: graphs distinct
// ring-plus-chords structures (the genCircuits recipe) revisited
// round-robin for count total requests, every request carrying a fresh
// (γ, β) pair at p=1. Structure and seed repeat exactly across visits, so
// all requests against one structure share an angle-free skeleton key
// server-side; only the angles change between them.
func genAngleSweep(rng *rand.Rand, graphs, count int, devName, policy string) [][]byte {
	type structure struct {
		n     int
		edges [][2]int
	}
	structs := make([]structure, graphs)
	for g := range structs {
		n := 6 + rng.Intn(9) // the warm-phase size band (6..14 nodes)
		seen := make(map[[2]int]bool)
		var edges [][2]int
		for v := 0; v < n; v++ {
			e := [2]int{v, (v + 1) % n}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			seen[e] = true
			edges = append(edges, e)
		}
		for c := 0; c < n/2; c++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		structs[g] = structure{n: n, edges: edges}
	}
	docs := make([][]byte, count)
	for i := range docs {
		s := structs[i%graphs]
		// A deterministic angle walk with every point distinct, avoiding the
		// default schedule so no request collides with a warm-phase document.
		gamma := 0.01 * float64(i+1)
		beta := 0.007 * float64(i+1)
		req := serve.CompileRequest{
			DeviceName: devName,
			Circuit:    serve.CircuitDoc{N: s.n, Edges: s.edges},
			Config: serve.ConfigDoc{Policy: policy, P: 1, Seed: int64(i%graphs + 1), DeadlineMS: 60000,
				Gamma: []float64{gamma}, Beta: []float64{beta}},
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err) // a struct we just built cannot fail to marshal
		}
		docs[i] = body
	}
	return docs
}

func post(client *http.Client, base string, body []byte) (status int, resp []byte, err error) {
	r, err := client.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	return r.StatusCode, data, err
}

// pct returns the q-th percentile of sorted (nearest-rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeHistogram reads one histogram's cumulative bucket counts from the
// Prometheus text endpoint: ascending bounds (the le labels, excluding
// +Inf) and the cumulative counts including the final +Inf bucket. A
// histogram that was never observed reads as empty (nil, nil).
func scrapeHistogram(client *http.Client, base, name string) (bounds []float64, cum []int64, err error) {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, fmt.Errorf("scraping metrics: %w", err)
	}
	defer r.Body.Close()
	prefix := name + `_bucket{le="`
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := strings.TrimPrefix(line, prefix)
		end := strings.Index(rest, `"}`)
		if end < 0 {
			return nil, nil, fmt.Errorf("malformed bucket line %q", line)
		}
		le, val := rest[:end], strings.TrimSpace(rest[end+2:])
		c, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		if le == "+Inf" {
			cum = append(cum, c)
			continue
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		bounds = append(bounds, b)
		cum = append(cum, c)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(cum) > 0 && len(cum) != len(bounds)+1 {
		return nil, nil, fmt.Errorf("histogram %s: %d bounds but %d cumulative counts", name, len(bounds), len(cum))
	}
	return bounds, cum, nil
}

// scrapeHistogramDelta reads the histogram again and returns the per-bucket
// counts accumulated since the before scrape — the phase-local distribution
// even against a server with prior traffic.
func scrapeHistogramDelta(client *http.Client, base, name string, beforeCum []int64) (obsv.HistogramStat, error) {
	bounds, after, err := scrapeHistogram(client, base, name)
	if err != nil {
		return obsv.HistogramStat{}, err
	}
	if len(after) == 0 {
		return obsv.HistogramStat{Name: name}, nil
	}
	if len(beforeCum) != 0 && len(beforeCum) != len(after) {
		return obsv.HistogramStat{}, fmt.Errorf("histogram %s changed shape mid-run (%d -> %d buckets)", name, len(beforeCum), len(after))
	}
	counts := make([]int64, len(after)) // per-bucket, overflow last
	var prev int64
	for i, c := range after {
		if len(beforeCum) != 0 {
			c -= beforeCum[i]
		}
		counts[i] = c - prev
		prev = c
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			return obsv.HistogramStat{}, fmt.Errorf("histogram %s: bucket count went backwards over the phase", name)
		}
		total += c
	}
	return obsv.HistogramStat{Name: name, Bounds: bounds, Counts: counts, Count: total}, nil
}

// scrapeGauge reads one gauge sample (the series name including any label
// set, verbatim) from the Prometheus text endpoint; missing series read 0.
func scrapeGauge(client *http.Client, base, series string) (float64, error) {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("scraping metrics: %w", err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series)), 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %q: %w", line, err)
		}
		return v, nil
	}
	return 0, sc.Err()
}

// scrapeCounter reads one counter from the Prometheus text endpoint.
// Missing counters read 0 (obsv only emits counters that were recorded).
func scrapeCounter(client *http.Client, base, name string) (int64, error) {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("scraping metrics: %w", err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, name)), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %s: %w", line, err)
		}
		return v, nil
	}
	return 0, sc.Err()
}
