// Command qaoad-load is the deterministic load generator for qaoad. It
// drives three phases against a server — warm (fill the compiled-circuit
// cache), cached (sustained throughput over the warm keys, measuring p50/
// p99 latency and req/s), and overload (a deliberate burst of distinct
// uncached compiles that must shed cleanly with 429s, never 5xx) — and
// writes a schema-versioned BENCH record of the results.
//
// The workload is a pure function of -seed: the same circuits in the same
// order every run. Shed accounting is verified exactly: the client-observed
// 429 count must equal the server's serve/shed counter delta over the
// overload phase, proving no response path is double- or under-counted.
//
// By default it boots an in-process qaoad server on a loopback port;
// -addr points it at an externally running daemon instead.
//
// Usage:
//
//	qaoad-load -metrics-out BENCH_serve.json -min-throughput 500
//	qaoad-load -addr 127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/qaoac"
)

func main() {
	var (
		addr      = flag.String("addr", "", "address of a running qaoad (default: boot an in-process server)")
		devName   = flag.String("device", "tokyo", "registered device the workload compiles against")
		warmN     = flag.Int("warm", 24, "distinct circuits compiled during the warm phase (the cached working set)")
		requests  = flag.Int("requests", 4000, "total requests of the cached phase")
		clients   = flag.Int("clients", 16, "concurrent clients of the cached phase")
		overN     = flag.Int("overload", 192, "distinct uncached circuits of the overload burst")
		overCli   = flag.Int("overload-clients", 48, "concurrent clients of the overload burst")
		seed      = flag.Int64("seed", 7, "workload seed: circuits and schedules are a pure function of it")
		minRPS    = flag.Float64("min-throughput", 0, "fail unless the cached phase sustains at least this many req/s (0 = no gate)")
		minShed   = flag.Int("min-shed", 0, "fail unless the overload phase sheds at least this many requests (0 = no gate)")
		injectLat = flag.Duration("inject-latency", 0, "in-process server: inject this much latency into every compile pass (makes overload shedding reproducible on small machines)")
		workers   = flag.Int("workers", 4, "in-process server: maximum concurrent compile flights")
		queue     = flag.Int("queue", 0, "in-process server: admission queue bound (default 4×workers)")
		out       = flag.String("metrics-out", "", "write the BENCH_*.json record to this path")
		rev       = flag.String("rev", "", "revision stamped into the record (default $GITHUB_SHA, then \"dev\")")
	)
	flag.Parse()
	if err := run(*addr, *devName, *warmN, *requests, *clients, *overN, *overCli, *seed, *minRPS,
		*minShed, *injectLat, *workers, *queue, *out, *rev); err != nil {
		fmt.Fprintln(os.Stderr, "qaoad-load:", err)
		os.Exit(1)
	}
}

func run(addr, devName string, warmN, requests, clients, overN, overCli int, seed int64, minRPS float64,
	minShed int, injectLat time.Duration, workers, queue int, out, rev string) error {
	col := obsv.New()
	if addr == "" {
		// The optional injected pass latency models real-hardware compile
		// times on machines too small for CPU-bound compiles to overlap
		// (sleeps yield the CPU, so concurrent requests genuinely pile up
		// at admission and the overload phase sheds reproducibly).
		var hook compile.Hook
		if injectLat > 0 {
			hook = func(string) error { time.Sleep(injectLat); return nil }
		}
		srv := serve.New(serve.Config{Workers: workers, Queue: queue, Obs: col, Hook: hook})
		srv.MarkReady()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := serve.NewHTTPServer(srv.Handler())
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Drain(ctx)
			hs.Shutdown(ctx)
			srv.Close()
		}()
		addr = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "qaoad-load: in-process server on %s (workers=%d)\n", addr, workers)
	}
	base := "http://" + addr
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * (clients + overCli),
		MaxIdleConnsPerHost: 2 * (clients + overCli),
	}}

	rng := rand.New(rand.NewSource(seed))
	// Warm working set: small p=1 IC circuits (the cached-throughput
	// subject). Overload burst: large p=12 VIC circuits — slow enough that
	// the worker pool and queue demonstrably fill and the rest shed.
	warm := genCircuits(rng, warmN, devName, "IC", 6, 14, 1)
	over := genCircuits(rng, overN, devName, "VIC", 16, 20, 12)

	// Phase 1: warm. Every circuit compiles once; the cache now holds the
	// working set the cached phase replays.
	for i, body := range warm {
		st, _, err := post(client, base, body)
		if err != nil {
			return fmt.Errorf("warm %d: %w", i, err)
		}
		if st != http.StatusOK {
			return fmt.Errorf("warm %d: status %d", i, st)
		}
	}
	fmt.Fprintf(os.Stderr, "qaoad-load: warm done (%d circuits)\n", warmN)

	// Phase 2: cached throughput. Each client replays the warm working set
	// round-robin from its own offset; every response must be a cache hit.
	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, requests)
		bad       int
		firstErr  error
	)
	perClient := requests / clients
	startCached := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := warm[(c+i)%len(warm)]
				t0 := time.Now()
				st, _, err := post(client, base, body)
				d := time.Since(t0)
				mu.Lock()
				if err != nil || st != http.StatusOK {
					bad++
					if firstErr == nil {
						firstErr = fmt.Errorf("cached client %d req %d: status %d err %v", c, i, st, err)
					}
				} else {
					latencies = append(latencies, float64(d.Microseconds())/1000.0)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	cachedWall := time.Since(startCached)
	if bad > 0 {
		return fmt.Errorf("cached phase: %d bad responses (first: %v)", bad, firstErr)
	}
	sort.Float64s(latencies)
	rps := float64(len(latencies)) / cachedWall.Seconds()
	p50, p99 := pct(latencies, 0.50), pct(latencies, 0.99)
	fmt.Printf("cached:   %d req in %s = %.0f req/s, p50 %.2fms p99 %.2fms\n",
		len(latencies), cachedWall.Round(time.Millisecond), rps, p50, p99)

	// Phase 3: overload. Distinct uncached compiles driven closed-loop:
	// overload-clients workers each march through their slice of the burst
	// back-to-back, so in-flight pressure stays above the server's
	// workers+queue capacity for the whole phase regardless of connection-
	// setup stagger. The well-behaved outcomes are 200 (admitted) and 429
	// (shed); anything 5xx is a robustness bug.
	shedBefore, err := scrapeCounter(client, base, "qaoa_serve_shed_total")
	if err != nil {
		return err
	}
	var ok200, shed429, http5xx, other int
	start := make(chan struct{})
	startOver := time.Now()
	for c := 0; c < overCli; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := c; i < len(over); i += overCli {
				st, _, err := post(client, base, over[i])
				mu.Lock()
				switch {
				case err != nil:
					other++
				case st == http.StatusOK:
					ok200++
				case st == http.StatusTooManyRequests:
					shed429++
				case st >= 500:
					http5xx++
				default:
					other++
				}
				mu.Unlock()
			}
		}(c)
	}
	close(start)
	wg.Wait()
	overWall := time.Since(startOver)
	shedAfter, err := scrapeCounter(client, base, "qaoa_serve_shed_total")
	if err != nil {
		return err
	}
	serverShed := shedAfter - shedBefore
	fmt.Printf("overload: %d req in %s: %d ok, %d shed (429), %d 5xx, %d other; server shed delta %d\n",
		overN, overWall.Round(time.Millisecond), ok200, shed429, http5xx, other, serverShed)

	if out != "" {
		// In-process runs fold the server's own counters (shed, cache hits,
		// singleflight shares) into the record; against a remote server the
		// collector is empty and /metrics is the source of truth.
		rep := obsv.NewReport("qaoad-load", qaoac.RevisionFromEnv(rev), col)
		rep.Benchmarks = []obsv.Benchmark{
			{Name: "serve/cached", Instances: len(latencies), ReqPerSec: rps, P50MS: p50, P99MS: p99},
			{Name: "serve/overload", Instances: overN, ReqPerSec: float64(overN) / overWall.Seconds(),
				Shed: int64(shed429), HTTP5xx: int64(http5xx)},
		}
		if err := rep.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}

	// Gates, strictest last so every number above is always printed.
	if http5xx > 0 || other > 0 {
		return fmt.Errorf("overload phase returned %d 5xx and %d other failures; want only 200/429", http5xx, other)
	}
	if int64(shed429) != serverShed {
		return fmt.Errorf("shed accounting mismatch: clients saw %d 429s, server counted %d", shed429, serverShed)
	}
	if minRPS > 0 && rps < minRPS {
		return fmt.Errorf("cached throughput %.0f req/s below the -min-throughput gate %.0f", rps, minRPS)
	}
	if minShed > 0 && shed429 < minShed {
		return fmt.Errorf("overload phase shed %d requests, below the -min-shed gate %d", shed429, minShed)
	}
	return nil
}

// genCircuits produces count deterministic compile-request bodies: random
// ring-plus-chords MaxCut instances of nmin..nmax nodes at p levels. Every
// document is a pure function of the rng stream.
func genCircuits(rng *rand.Rand, count int, devName, policy string, nmin, nmax, p int) [][]byte {
	docs := make([][]byte, count)
	for i := range docs {
		n := nmin + rng.Intn(nmax-nmin+1)
		seen := make(map[[2]int]bool)
		var edges [][2]int
		for v := 0; v < n; v++ {
			e := [2]int{v, (v + 1) % n}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			seen[e] = true
			edges = append(edges, e)
		}
		for c := 0; c < n/2; c++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		req := serve.CompileRequest{
			DeviceName: devName,
			Circuit:    serve.CircuitDoc{N: n, Edges: edges},
			Config:     serve.ConfigDoc{Policy: policy, P: p, Seed: int64(i + 1), DeadlineMS: 60000},
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(err) // a struct we just built cannot fail to marshal
		}
		docs[i] = body
	}
	return docs
}

func post(client *http.Client, base string, body []byte) (status int, resp []byte, err error) {
	r, err := client.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	return r.StatusCode, data, err
}

// pct returns the q-th percentile of sorted (nearest-rank).
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeCounter reads one counter from the Prometheus text endpoint.
// Missing counters read 0 (obsv only emits counters that were recorded).
func scrapeCounter(client *http.Client, base, name string) (int64, error) {
	r, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("scraping metrics: %w", err)
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, name)), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %s: %w", line, err)
		}
		return v, nil
	}
	return 0, sc.Err()
}
