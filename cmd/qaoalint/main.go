// qaoalint is the repo's invariant checker: a multichecker over the five
// analyzers of internal/analysis (determinism, obsvnames, ctxflow,
// errcmp, hotpath). It runs in two modes:
//
// Standalone, from the module root (loads packages itself, test files
// included):
//
//	go run ./cmd/qaoalint ./...
//
// As a vet tool (the go command drives it one compilation unit at a time,
// passing a JSON config with the compiler's export data):
//
//	go build -o qaoalint ./cmd/qaoalint
//	go vet -vettool=$(pwd)/qaoalint ./...
//
// Individual analyzers can be disabled with -<name>=false. Exit status:
// 0 clean, 1 on driver errors, 2 when diagnostics were reported (vet
// convention).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errcmp"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/obsvnames"
)

// version participates in the go command's content-based vet caching: it
// must change when the analyzers change behavior, or cached clean results
// would mask new diagnostics. Bump on any analyzer change.
const version = "qaoalint-1.0.0"

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	obsvnames.Analyzer,
	ctxflow.Analyzer,
	errcmp.Analyzer,
	hotpath.Analyzer,
}

func main() {
	var vFlag string
	flag.StringVar(&vFlag, "V", "", "print version and exit (the go command probes -V=full)")
	printFlags := flag.Bool("flags", false, "print the tool's flags as JSON and exit (the go command probes this)")
	_ = flag.Bool("json", false, "accepted for vet protocol compatibility (ignored)")
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	flag.Parse()

	if vFlag != "" {
		// go vet probes `tool -V=full` and keys its result cache on the
		// output, which must be of the form "name version ...".
		fmt.Printf("qaoalint version %s\n", version)
		return
	}
	if *printFlags {
		// go vet probes `tool -flags` to learn which flags it may forward.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var fs []jsonFlag
		flag.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			fs = append(fs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
		})
		if err := json.NewEncoder(os.Stdout).Encode(fs); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], active))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, active))
}

// runStandalone loads the named patterns (with tests) and reports every
// diagnostic in vet format.
func runStandalone(patterns []string, active []*analysis.Analyzer) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(pkgs, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	seen := map[string]bool{}
	for _, d := range diags {
		line := fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
		if seen[line] {
			continue // a file analyzed under both a package and its test variant
		}
		seen[line] = true
		fmt.Fprintln(os.Stderr, line)
	}
	if len(seen) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the JSON the go command hands a -vettool per compilation
// unit (the fields qaoalint consumes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by cfgPath, speaking
// enough of the x/tools unitchecker protocol for `go vet -vettool`.
func runVetUnit(cfgPath string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even though
	// qaoalint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("qaoalint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	// Strip the " [pkg.test]" suffix of in-package test units so the
	// per-package scoping of the analyzers still recognizes the path.
	checkPath := cfg.ImportPath
	if i := strings.Index(checkPath, " ["); i >= 0 {
		checkPath = checkPath[:i]
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	pkg := &analysis.Package{Path: checkPath, Fset: fset, Syntax: files, Types: tpkg, Info: info}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
