// qaoalint is the repo's invariant checker: a multichecker over the nine
// analyzers of internal/analysis (determinism, obsvnames, ctxflow,
// errcmp, hotpath, poolsafe, leakcheck, lockorder, allowdoc). It runs in
// two modes:
//
// Standalone, from the module root (loads packages itself, test files
// included):
//
//	go run ./cmd/qaoalint ./...
//
// As a vet tool (the go command drives it one compilation unit at a time,
// passing a JSON config with the compiler's export data):
//
//	go build -o qaoalint ./cmd/qaoalint
//	go vet -vettool=$(pwd)/qaoalint ./...
//
// Individual analyzers can be disabled with -<name>=false.
//
// -json switches standalone mode to machine-readable output: a JSON array
// of findings, each {"file","line","col","analyzer","message","allowed"},
// sorted by position. By default only live findings (allowed=false)
// appear — a clean tree prints []. -include-allowed adds the findings
// that //lint:allow escapes suppressed, so the blast radius of every
// escape stays auditable. In vet-unit mode -json emits the x/tools
// unitchecker JSON object ({"pkg": {"analyzer": [{posn, message}]}}) on
// stdout so `go vet -json` aggregates it.
//
// Exit status, both modes: 0 clean (allowed-only findings are clean),
// 1 on driver/load errors, 2 when live diagnostics were reported (vet
// convention). With -json the findings go to stdout and the exit code is
// the only failure signal CI needs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allowdoc"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errcmp"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/leakcheck"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/obsvnames"
	"repro/internal/analysis/poolsafe"
)

// version participates in the go command's content-based vet caching: it
// must change when the analyzers change behavior, or cached clean results
// would mask new diagnostics. Bump on any analyzer change.
const version = "qaoalint-2.0.0"

var all = buildAll()

func buildAll() []*analysis.Analyzer {
	base := []*analysis.Analyzer{
		determinism.Analyzer,
		obsvnames.Analyzer,
		ctxflow.Analyzer,
		errcmp.Analyzer,
		hotpath.Analyzer,
		poolsafe.Analyzer,
		leakcheck.Analyzer,
		lockorder.Analyzer,
	}
	// allowdoc audits the escape comments of every analyzer, itself
	// included.
	names := []string{"allowdoc"}
	for _, a := range base {
		names = append(names, a.Name)
	}
	return append(base, allowdoc.New(names...))
}

func main() {
	var vFlag string
	flag.StringVar(&vFlag, "V", "", "print version and exit (the go command probes -V=full)")
	printFlags := flag.Bool("flags", false, "print the tool's flags as JSON and exit (the go command probes this)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON (standalone: array of findings on stdout; vet unit: unitchecker object)")
	includeAllowed := flag.Bool("include-allowed", false, "with -json, also emit findings suppressed by //lint:allow escapes (allowed=true)")
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	flag.Parse()

	if vFlag != "" {
		// go vet probes `tool -V=full` and keys its result cache on the
		// output, which must be of the form "name version ...".
		fmt.Printf("qaoalint version %s\n", version)
		return
	}
	if *printFlags {
		// go vet probes `tool -flags` to learn which flags it may forward.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var fs []jsonFlag
		flag.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			fs = append(fs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
		})
		if err := json.NewEncoder(os.Stdout).Encode(fs); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], active, *jsonOut))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, active, *jsonOut, *includeAllowed))
}

// jsonFinding is one -json output record: position, analyzer, message,
// and the allow-escape state (true when a //lint:allow suppressed it).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

// runStandalone loads the named patterns (with tests) and reports every
// diagnostic in vet format, or as a JSON array with -json.
func runStandalone(patterns []string, active []*analysis.Analyzer, jsonOut, includeAllowed bool) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	diags, suppressed, err := analysis.RunAnalyzersVerbose(pkgs, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	if jsonOut {
		out := diags
		if includeAllowed {
			out = append(out, suppressed...)
			analysis.SortDiagnostics(out)
		}
		findings := []jsonFinding{} // encode a clean tree as [], not null
		seen := map[jsonFinding]bool{}
		for _, d := range out {
			f := jsonFinding{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Allowed:  d.Allowed,
			}
			if seen[f] {
				continue // a file analyzed under both a package and its test variant
			}
			seen[f] = true
			findings = append(findings, f)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			return 2
		}
		return 0
	}
	seen := map[string]bool{}
	for _, d := range diags {
		line := fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
		if seen[line] {
			continue // a file analyzed under both a package and its test variant
		}
		seen[line] = true
		fmt.Fprintln(os.Stderr, line)
	}
	if len(seen) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the JSON the go command hands a -vettool per compilation
// unit (the fields qaoalint consumes; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by cfgPath, speaking
// enough of the x/tools unitchecker protocol for `go vet -vettool`.
func runVetUnit(cfgPath string, active []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even though
	// qaoalint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("qaoalint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	// Strip the " [pkg.test]" suffix of in-package test units so the
	// per-package scoping of the analyzers still recognizes the path.
	checkPath := cfg.ImportPath
	if i := strings.Index(checkPath, " ["); i >= 0 {
		checkPath = checkPath[:i]
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	pkg := &analysis.Package{Path: checkPath, Fset: fset, Syntax: files, Types: tpkg, Info: info}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
		return 1
	}
	if jsonOut {
		// The unitchecker JSON shape: {"pkg": {"analyzer": [{posn, message}]}}.
		// `go vet -json` reads this from stdout and aggregates; diagnostics
		// reported this way exit 0 by the protocol's convention.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{Posn: d.Position.String(), Message: d.Message})
		}
		out := map[string]map[string][]jsonDiag{cfg.ImportPath: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "qaoalint: %v\n", err)
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
