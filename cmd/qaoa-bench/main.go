// Command qaoa-bench runs the reduced-scale Fig. 7/8/9 benchmark suite and
// writes the BENCH_<rev>.json metrics artifact: per-pass compile timings
// (raw and machine-normalized), SWAP counts, depth, gate counts, ARG and
// success probability per figure×preset record, plus the full counter and
// span dump of the run. With -baseline it additionally gates the fresh
// report against a committed one and exits 1 on any regression — the CI
// benchmark gate.
//
// Usage:
//
//	qaoa-bench -metrics-out BENCH_baseline.json -rev baseline
//	qaoa-bench -baseline BENCH_baseline.json -rev "$GITHUB_SHA"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obsv"
	"repro/qaoac"
)

func main() {
	var (
		out       = flag.String("metrics-out", "", "write the metrics report to this path (default BENCH_<rev>.json)")
		rev       = flag.String("rev", "", "revision stamped into the report (default $GITHUB_SHA, then \"dev\")")
		baseline  = flag.String("baseline", "", "compare against this committed BENCH_*.json and exit 1 on regression")
		timeThr   = flag.Float64("time-threshold", 0, "allowed fractional compile-time regression (default 0.15)")
		countThr  = flag.Float64("count-threshold", 0, "allowed fractional swap/depth/sim-work-counter regression (default 0.15)")
		simThr    = flag.Float64("sim-threshold", 0, "allowed fractional sim wall-time regression (default 0.75; the tight gate is the deterministic sim work counters)")
		timeSlack = flag.Float64("time-slack", 0, "absolute compile-time grace in gated units (default 0.05, negative disables)")
		instances = flag.Int("instances", 0, "workload instances per record (default 4)")
		nodes     = flag.Int("nodes", 0, "problem graph size of the tokyo records (default 16)")
		seed      = flag.Int64("seed", 0, "suite random seed (default 11)")
		argShots  = flag.Int("arg-shots", 0, "measurement shots per ARG record (default 4096)")
		argTraj   = flag.Int("arg-trajectories", 0, "noisy trajectories per ARG record (default 256)")
		trials    = flag.Int("router-trials", 0, "stochastic routing trials per circuit (0/1 = single-shot; trials run in parallel across GOMAXPROCS with a deterministic result)")
		parambind = flag.String("parambind", "", "run the parameterized-compilation evidence suite instead of the figure suite: \"before\" (full compile per evaluation/point) or \"after\" (skeleton compiled once, angles bound per evaluation/point)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "abort the suite after this long (0 = no deadline)")
		listen    = flag.String("listen", "", "serve live Prometheus metrics, /healthz and pprof on this address (e.g. :8080) while the suite runs")
		logOut    = flag.String("log", "", "write a JSON wide-event run summary line to this file (\"-\" for stderr, empty disables)")
	)
	flag.Parse()

	if err := run(*out, *rev, *baseline, *parambind, *timeThr, *countThr, *simThr, *timeSlack, *instances, *nodes, *argShots, *argTraj, *trials, *seed, *timeout, *listen, *logOut); err != nil {
		fmt.Fprintln(os.Stderr, "qaoa-bench:", err)
		os.Exit(1)
	}
}

func run(out, rev, baseline, parambind string, timeThr, countThr, simThr, timeSlack float64, instances, nodes, argShots, argTraj, trials int, seed int64, timeout time.Duration, listen, logOut string) error {
	runStart := time.Now()
	rev = qaoac.RevisionFromEnv(rev)
	if out == "" {
		out = qaoac.DefaultBenchFilename(rev)
	}
	// SIGINT/SIGTERM cancel the suite context: RunBenchSuite stops at the
	// next record boundary and the metrics endpoint (if any) drains
	// gracefully on the way out instead of dying mid-scrape.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	cfg := qaoac.DefaultBenchSuiteConfig()
	if instances > 0 {
		cfg.Instances = instances
	}
	if nodes > 0 {
		cfg.Nodes = nodes
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if argShots > 0 {
		cfg.ARGShots = argShots
	}
	if argTraj > 0 {
		cfg.ARGTrajectories = argTraj
	}
	cfg.RouterTrials = trials

	c := qaoac.NewCollector()
	qaoac.SetObservability(c)
	defer qaoac.SetObservability(nil)

	if listen != "" {
		// Progress: compilations finished so far (the suite size is not known
		// up front, so Total stays 0).
		progress := func() qaoac.ObsProgress {
			return qaoac.ObsProgress{Phase: "bench", Done: int(c.Counter(obsv.CntCompilations))}
		}
		obs, lerr := qaoac.ServeObservability(listen, c, progress)
		if lerr != nil {
			return lerr
		}
		obs.SetReady(true, "")
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			obs.Shutdown(dctx)
		}()
		fmt.Fprintf(os.Stderr, "qaoa-bench: serving metrics on http://%s/metrics\n", obs.Addr())
	}

	rep := qaoac.NewBenchReport("qaoa-bench", rev, nil)
	rep.TimeUnitSec = qaoac.CalibrateTimeUnit()
	if parambind != "" {
		// Evidence-pair mode: same seed, same workload, two compilation
		// modes — the before/after files differ only in where the compile
		// work lands (full pipeline per evaluation vs one skeleton + binds).
		if baseline != "" {
			return fmt.Errorf("-parambind and -baseline are mutually exclusive: compare the before/after pair directly")
		}
		pcfg := qaoac.DefaultParamBind()
		switch parambind {
		case "before":
			pcfg.CompilePerEval = true
		case "after":
		default:
			return fmt.Errorf("-parambind must be \"before\" or \"after\", got %q", parambind)
		}
		if instances > 0 {
			pcfg.Instances = instances
		}
		if seed != 0 {
			pcfg.Seed = seed
		}
		if err := qaoac.RunParamBindSuite(ctx, pcfg, rep); err != nil {
			return err
		}
	} else if err := qaoac.RunBenchSuite(ctx, cfg, rep); err != nil {
		return err
	}
	rep.AttachCollector(c)
	if err := rep.WriteFile(out); err != nil {
		return err
	}
	// One canonical wide-event summary line per run — the same log/slog JSON
	// vocabulary qaoad emits per request, so one pipeline parses both.
	logW, closeLog, err := qaoac.OpenLogWriter(logOut)
	if err != nil {
		return err
	}
	defer closeLog()
	if logW != nil {
		ev := (&obsv.WideEvent{}).
			Str(obsv.FieldPhase, "bench").
			Int(obsv.FieldRequests, int64(len(rep.Benchmarks))).
			Float(obsv.FieldDurationMS, float64(time.Since(runStart).Microseconds())/1000.0).
			Str(obsv.FieldOutcome, "ok")
		ev.Emit(qaoac.NewWideLogger(logW), "run")
	}
	fmt.Printf("wrote %s: %d benchmarks, %d counters, time unit %.4fs\n",
		out, len(rep.Benchmarks), len(rep.Counters), rep.TimeUnitSec)
	for _, b := range rep.Benchmarks {
		if b.Evaluations > 0 {
			fmt.Printf("  %-16s evals=%5d compiles=%5d skeletons=%2d binds=%5d wall=%.3fs (%.0f eval/s)\n",
				b.Name, b.Evaluations, b.Compilations, b.SkeletonCompiles, b.Binds, b.CompileSec, b.ReqPerSec)
			continue
		}
		fmt.Printf("  %-16s swaps=%6.1f depth=%6.1f gates=%7.1f compile=%.4fs sim=%.4fs arg=%5.2f%%\n",
			b.Name, b.Swaps, b.Depth, b.Gates, b.CompileSec, b.SimSec, b.ARGPct)
	}

	if baseline == "" {
		return nil
	}
	base, err := qaoac.ReadBenchReport(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	regs := qaoac.CompareBenchReports(base, rep, qaoac.BenchCompareOptions{
		TimeThreshold:  timeThr,
		CountThreshold: countThr,
		SimThreshold:   simThr,
		TimeSlack:      timeSlack,
	})
	if len(regs) == 0 {
		fmt.Printf("gate PASS: no regressions against %s (rev %s)\n", baseline, base.Revision)
		return nil
	}
	fmt.Fprintf(os.Stderr, "gate FAIL: %d regression(s) against %s (rev %s)\n", len(regs), baseline, base.Revision)
	for _, g := range regs {
		fmt.Fprintln(os.Stderr, "  "+g.String())
	}
	os.Exit(1)
	return nil
}
